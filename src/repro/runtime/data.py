"""Shared data-structure views over coherent memory.

Thin wrappers that turn array indexing into the word-addressed
:class:`~repro.runtime.ops.Read`/:class:`~repro.runtime.ops.Write`
operations thread bodies yield.  A :class:`Matrix` can pad its rows to
page boundaries -- the allocation discipline section 6 of the paper
recommends so that rows owned by different threads do not share pages.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .alloc import Arena
from .ops import Read, Write


class WordArray:
    """A 1-D array of words in coherent memory."""

    def __init__(self, base_va: int, n: int, name: str = "") -> None:
        if n < 1:
            raise ValueError("empty array")
        self.base_va = base_va
        self.n = n
        self.name = name

    @classmethod
    def alloc(
        cls, arena: Arena, n: int, name: str = "",
        page_aligned: bool = True,
    ) -> "WordArray":
        return cls(arena.alloc(n, page_aligned=page_aligned), n, name)

    def va(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"{self.name}[{i}] out of range (n={self.n})")
        return self.base_va + i

    def read(self, i: int, n: int = 1) -> Read:
        self.va(i)
        if i + n > self.n:
            raise IndexError(f"{self.name}[{i}:{i + n}] out of range")
        return Read(self.base_va + i, n)

    def read_all(self) -> Read:
        return Read(self.base_va, self.n)

    def write(self, i: int, value: Union[int, np.ndarray]) -> Write:
        self.va(i)
        n = 1 if np.isscalar(value) else len(value)
        if i + n > self.n:
            raise IndexError(f"{self.name}[{i}:{i + n}] out of range")
        return Write(self.base_va + i, value)


class Matrix:
    """A row-major 2-D word matrix, optionally with page-padded rows."""

    def __init__(
        self,
        base_va: int,
        rows: int,
        cols: int,
        row_stride: Optional[int] = None,
        name: str = "",
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("empty matrix")
        self.base_va = base_va
        self.rows = rows
        self.cols = cols
        self.row_stride = row_stride if row_stride is not None else cols
        if self.row_stride < cols:
            raise ValueError("row stride smaller than the row")
        self.name = name

    @classmethod
    def alloc(
        cls,
        arena: Arena,
        rows: int,
        cols: int,
        name: str = "",
        pad_rows_to_pages: bool = False,
    ) -> "Matrix":
        """Allocate in an arena; optionally pad each row to whole pages."""
        wpp = arena.words_per_page
        if pad_rows_to_pages:
            stride = ((cols + wpp - 1) // wpp) * wpp
        else:
            stride = cols
        base = arena.alloc(rows * stride, page_aligned=True)
        return cls(base, rows, cols, row_stride=stride, name=name)

    @property
    def n_words(self) -> int:
        return self.rows * self.row_stride

    def va(self, r: int, c: int = 0) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(
                f"{self.name}[{r},{c}] out of range "
                f"({self.rows}x{self.cols})"
            )
        return self.base_va + r * self.row_stride + c

    def read(self, r: int, c: int) -> Read:
        return Read(self.va(r, c), 1)

    def write(self, r: int, c: int, value: int) -> Write:
        return Write(self.va(r, c), value)

    def read_row(self, r: int, start: int = 0, n: Optional[int] = None
                 ) -> Read:
        if n is None:
            n = self.cols - start
        self.va(r, start)
        if start + n > self.cols:
            raise IndexError(f"{self.name} row {r} slice out of range")
        return Read(self.va(r, start), n)

    def write_row(
        self, r: int, values: np.ndarray, start: int = 0
    ) -> Write:
        self.va(r, start)
        if start + len(values) > self.cols:
            raise IndexError(f"{self.name} row {r} slice out of range")
        return Write(self.va(r, start), values)
