"""The run harness: execute a program on a PLATINUM kernel.

``run_program`` performs the whole experiment: program setup, thread
execution to completion, protocol invariant checking, and collection of
the kernel's post-mortem memory report -- returning everything a
benchmark or test needs in a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.instrumentation import MemoryReport
from ..core.policy import ReplicationPolicy
from ..kernel.kernel import Kernel
from ..machine.params import MachineParams
from .executor import ThreadProcess, _cpu_resource
from .program import Program, ProgramAPI


@dataclass
class RunResult:
    """Everything measured in one program run."""

    program: Program
    kernel: Kernel
    sim_time_ns: int
    thread_results: list[Any]
    report: MemoryReport

    @property
    def sim_time_ms(self) -> float:
        return self.sim_time_ns / 1e6

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ns / 1e9

    def __repr__(self) -> str:
        return (
            f"<RunResult {self.program.name} {self.sim_time_ms:.3f} ms "
            f"faults={self.report.total_faults}>"
        )


def run_program(
    kernel: Kernel,
    program: Program,
    max_events: Optional[int] = None,
    check_invariants: bool = True,
    stall_limit_ns: float = 30e9,
) -> RunResult:
    """Run ``program`` to completion on ``kernel``.

    ``stall_limit_ns`` bounds how long (in simulated time) the run may go
    with every thread suspended and only daemon activity in the event
    queue -- a deadlocked program is reported instead of spinning on
    defrost ticks forever.
    """
    api = ProgramAPI(kernel)
    program.setup(api)
    if not api.thread_specs:
        raise ValueError(f"{program.name}: setup spawned no threads")
    start = kernel.engine.now
    processes = []
    for spec in api.thread_specs:
        cpu = _cpu_resource(kernel, spec.thread.processor)
        processes.append(ThreadProcess(kernel, spec.thread, spec.body, cpu))

    # O(1) per-event completion tracking: counting finish callbacks beats
    # scanning every process after every event (the scan was ~20% of a
    # whole run's wall clock)
    n_threads = len(processes)
    state = {"finished": 0, "crashed": False}

    def _note_finish(p: ThreadProcess) -> None:
        state["finished"] += 1
        if p.error is not None:
            state["crashed"] = True

    for proc in processes:
        proc.on_finish(_note_finish)
        proc.start()

    last_activity = [kernel.engine.now]
    events_since_check = [0]

    def stop_when() -> bool:
        if state["crashed"] or state["finished"] == n_threads:
            return True
        # the stall check scans every cpu resource; amortize it -- the
        # stall limit is simulated seconds, so a 64-event granularity
        # changes only how promptly the diagnostic fires
        events_since_check[0] += 1
        if events_since_check[0] & 63:
            return False
        busy = max(
            (c.busy_until for c in getattr(
                kernel, "_cpu_resources", {}).values()),
            default=0,
        )
        if busy > last_activity[0]:
            last_activity[0] = busy
        if kernel.engine.now - last_activity[0] > stall_limit_ns:
            raise RuntimeError(
                f"{program.name}: no thread progress for "
                f"{stall_limit_ns / 1e9:.1f} simulated seconds; "
                f"still running: "
                f"{[p.name for p in processes if not p.finished]} "
                "(deadlock in the simulated program?)"
            )
        return False

    kernel.engine.run(max_events=max_events, stop_when=stop_when)
    results = [p.check() for p in processes]
    unfinished = [p.name for p in processes if not p.finished]
    if unfinished:
        raise RuntimeError(
            f"{program.name}: threads never finished: {unfinished} "
            "(deadlock or starvation in the simulated program)"
        )
    if check_invariants:
        kernel.check_invariants()
    program.verify(results)
    return RunResult(
        program=program,
        kernel=kernel,
        sim_time_ns=kernel.engine.now - start,
        thread_results=results,
        report=kernel.report(),
    )


def make_kernel(
    n_processors: int = 16,
    params: Optional[MachineParams] = None,
    policy: Optional[ReplicationPolicy] = None,
    defrost_enabled: bool = True,
    defrost_period: Optional[float] = None,
    trace: bool = False,
    metrics=False,
    **param_overrides,
) -> Kernel:
    """Convenience: a fresh kernel on a fresh Butterfly Plus-like machine.

    ``metrics`` enables the telemetry metrics registry: ``True`` creates
    an enabled :class:`~repro.telemetry.MetricsRegistry`; an existing
    registry instance is used as-is (share one across kernels to
    aggregate); ``False`` (the default) wires a disabled registry whose
    instrument writes cost one branch.
    """
    from ..telemetry.metrics import MetricsRegistry

    if params is None:
        params = MachineParams(n_processors=n_processors).scaled(
            **param_overrides
        )
    elif param_overrides:
        params = params.scaled(**param_overrides)
    if metrics is True:
        metrics = MetricsRegistry(enabled=True)
    elif metrics is False:
        metrics = None
    return Kernel(
        params=params,
        policy=policy,
        defrost_enabled=defrost_enabled,
        defrost_period=defrost_period,
        trace=trace,
        metrics=metrics,
    )
