"""Operations a user thread may yield to the executor.

Workload programs are generators over these operations.  Addresses are in
*words* (the Butterfly's unit of access is the 32-bit word); a virtual
page is ``params.words_per_page`` consecutive words.  Reads and writes may
span pages; the executor splits them into per-page runs, each of which is
translated by the simulated MMU and may fault into the PLATINUM kernel.

Atomic operations (:class:`TestAndSet`, :class:`FetchAdd`) apply their
read-modify-write at the simulation event where the operation is issued,
so two racing atomics serialize in event order -- the "atomicity of memory
operations" the paper's neural-network simulator relies on for
synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from ..sim.process import Op, WaitFor

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.ports import Port
    from .sync import Broadcast


@dataclass(frozen=True)
class Compute(Op):
    """Pure computation: occupies the processor for ``ns`` nanoseconds."""

    ns: float


@dataclass(frozen=True)
class Read(Op):
    """Read ``n`` consecutive words starting at word address ``va``.

    Resumes with a numpy array copy of the data.
    """

    va: int
    n: int = 1


@dataclass(frozen=True)
class Write(Op):
    """Write ``value`` (scalar or array) starting at word address ``va``."""

    va: int
    value: Union[int, np.ndarray]


@dataclass(frozen=True)
class TestAndSet(Op):
    """Atomically set word ``va`` to ``value``; resumes with the old word."""

    va: int
    value: int = 1


@dataclass(frozen=True)
class FetchAdd(Op):
    """Atomically add ``delta`` to word ``va``; resumes with the new value."""

    va: int
    delta: int = 1


@dataclass(frozen=True)
class Migrate(Op):
    """Explicitly migrate this thread to another processor."""

    processor: int


@dataclass(frozen=True)
class SendPort(Op):
    """Send a message (word array) to a port."""

    port: "Port"
    data: np.ndarray


@dataclass(frozen=True)
class RecvPort(Op):
    """Blocking receive; resumes with the message's word array."""

    port: "Port"


@dataclass(frozen=True)
class WaitNewer(Op):
    """Wait until a broadcast channel's version exceeds ``seen``.

    Resumes immediately if it already does -- this is what makes the
    capture-version / check / wait idiom in ``runtime.sync`` free of lost
    wakeups.
    """

    channel: "Broadcast"
    seen: int


@dataclass(frozen=True)
class GetTime(Op):
    """Resume immediately with the current simulated time (ns)."""


__all__ = [
    "Compute",
    "FetchAdd",
    "GetTime",
    "Migrate",
    "Read",
    "RecvPort",
    "SendPort",
    "TestAndSet",
    "WaitFor",
    "WaitNewer",
    "Write",
]
