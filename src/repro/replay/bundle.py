"""The ``repro-trace/1`` bundle: a byte-stable container for traces.

A bundle holds everything needed to re-simulate a recorded run:

* ``config`` -- the recording run's spec (workload/args for provenance)
  plus the fully resolved machine parameters and policy, so a replay can
  rebuild an identical kernel and then apply variant overrides;
* ``layout`` -- the post-setup virtual memory image (objects with
  per-page placement, address spaces with bindings, threads in spawn
  order, broadcast channels with base versions).  Ids are sequential on
  a fresh kernel, so recreating the layout in recorded order reproduces
  identical object/aspace/thread/Cpage identities;
* ``expected`` -- the recording run's final sim time, counter dict and
  executed-event count, which CI asserts against same-config replays;
* ``streams`` -- one ``(n_ops, 4)`` float64 array per thread encoding
  ``[kind, a, b, c]`` rows (see the ``K_*`` constants).

The on-disk format is deliberately *not* ``np.savez`` (zip members carry
timestamps, breaking byte-for-byte stability).  It is a magic string, an
8-byte little-endian header length, a canonical-JSON header, then the
raw little-endian array bytes.  Recording the same workload twice yields
identical files, which is what lets CI ``cmp`` trace artifacts.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

import numpy as np

TRACE_SCHEMA = "repro-trace/1"
_MAGIC = b"REPROTRC1\n"
_STREAM_DTYPE = "<f8"
_STREAM_COLS = 4

# -- op kinds (column 0 of a stream row) --------------------------------------
# [kind, a, b, c] with unused operands zero:
K_THINK = 0    # Compute: a = ns
K_READ = 1     # Read:    a = va, b = n words
K_WRITE = 2    # Write:   a = va, b = n words
K_RMW = 3      # TestAndSet/FetchAdd: a = va (one-word write run)
K_MIGRATE = 4  # Migrate: a = target processor
K_WAIT = 5     # WaitNewer: a = channel id, b = seen version
K_FIRE = 6     # Broadcast.fire between ops: a = channel id
K_DELAY = 7    # engine-level Delay: a = ns
K_GETTIME = 8  # GetTime (synchronous, zero cost)


class TraceError(RuntimeError):
    """A malformed or unreadable trace bundle."""


class RecordError(TraceError):
    """The program did something the recorder cannot capture."""


class ReplayError(TraceError):
    """The requested replay is impossible or failed verification."""


@dataclass
class TraceBundle:
    """An in-memory ``repro-trace/1`` bundle."""

    config: dict
    layout: dict
    expected: dict
    streams: list = field(default_factory=list)

    @property
    def n_threads(self) -> int:
        return len(self.streams)

    @property
    def n_ops(self) -> int:
        return sum(len(s) for s in self.streams)

    def __repr__(self) -> str:
        return (
            f"<TraceBundle {self.config.get('workload')!r} "
            f"threads={self.n_threads} ops={self.n_ops}>"
        )

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        streams_meta = []
        payloads = []
        offset = 0
        for i, arr in enumerate(self.streams):
            a = np.ascontiguousarray(arr, dtype=_STREAM_DTYPE)
            if a.ndim != 2 or a.shape[1] != _STREAM_COLS:
                raise TraceError(
                    f"stream {i}: expected (n, {_STREAM_COLS}) array, "
                    f"got shape {a.shape}"
                )
            raw = a.tobytes()
            streams_meta.append({
                "thread": i,
                "n_ops": int(a.shape[0]),
                "offset": offset,
                "nbytes": len(raw),
                "dtype": _STREAM_DTYPE,
            })
            payloads.append(raw)
            offset += len(raw)
        header = {
            "schema": TRACE_SCHEMA,
            "config": self.config,
            "layout": self.layout,
            "expected": self.expected,
            "streams": streams_meta,
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return b"".join([
            _MAGIC,
            struct.pack("<Q", len(header_bytes)),
            header_bytes,
            *payloads,
        ])

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TraceBundle":
        if not raw.startswith(_MAGIC):
            raise TraceError("not a repro-trace bundle (bad magic)")
        pos = len(_MAGIC)
        if len(raw) < pos + 8:
            raise TraceError("truncated bundle header length")
        (header_len,) = struct.unpack_from("<Q", raw, pos)
        pos += 8
        if len(raw) < pos + header_len:
            raise TraceError("truncated bundle header")
        try:
            header = json.loads(raw[pos: pos + header_len].decode("utf-8"))
        except ValueError as exc:
            raise TraceError(f"bad bundle header: {exc}") from exc
        if header.get("schema") != TRACE_SCHEMA:
            raise TraceError(
                f"unsupported trace schema {header.get('schema')!r} "
                f"(want {TRACE_SCHEMA!r})"
            )
        payload_start = pos + header_len
        streams = []
        for meta in header.get("streams", []):
            start = payload_start + meta["offset"]
            end = start + meta["nbytes"]
            if end > len(raw):
                raise TraceError(
                    f"truncated stream for thread {meta.get('thread')}"
                )
            arr = np.frombuffer(
                raw[start:end], dtype=meta.get("dtype", _STREAM_DTYPE)
            ).reshape(meta["n_ops"], _STREAM_COLS)
            streams.append(arr)
        return cls(
            config=header.get("config", {}),
            layout=header.get("layout", {}),
            expected=header.get("expected", {}),
            streams=streams,
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceBundle":
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise TraceError(f"cannot read trace {path}: {exc}") from exc
        return cls.from_bytes(raw)


def save_trace(bundle: TraceBundle, path: Union[str, Path]) -> Path:
    return bundle.save(path)


def load_trace(path: Union[str, Path]) -> TraceBundle:
    return TraceBundle.load(path)
