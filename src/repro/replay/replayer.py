"""Re-simulate a recorded trace under any policy/machine variant.

The replayer rebuilds a kernel from the bundle's layout (same object,
address-space, thread and coherent-page identities -- ids are sequential
re-creations in recorded order) and drives one
:class:`ReplayThreadProcess` per recorded thread.  Each process issues the
*identical* sequence of translate / fault / access / migrate / fire /
wait calls the live run made, in the same engine-event structure, so a
replay under the recording configuration reproduces the live run's event
ordering, protocol event counts, attribution totals and completion time
exactly.  What is elided -- generator execution and data movement (the
machine is built *dataless*) -- carries no simulated cost.

Memory operations are pre-decoded into per-page ``(vpage, words)`` runs
and the common case (ATC hit with sufficient rights) is costed inline
with the same arithmetic as :meth:`Machine.access`; anything else falls
back to a faithful mirror of the executor's translate/fault loop, so the
protocol path -- the thing being studied -- is always the real kernel
code, never an approximation.

Replays under a *variant* (different policy, freeze window, latency
constants) hold the recorded reference string fixed: spin iterations and
branch outcomes are the live run's.  Structural parameters that would
invalidate the recorded addresses (``page_bytes``, ``word_bytes``,
``n_processors``) cannot be overridden.

Two fidelity modes are offered.  ``mode="exact"`` (the default, described
above) replays one engine event per op and is bit-identical to the live
run under the recording configuration.  ``mode="fast"`` trades that
guarantee for array-at-a-time cost accounting: stretches of mapped
memory references and thinks are costed in one vectorized pass per
engine event, and only protocol events -- faults, shootdowns, freezes,
defrosts -- and synchronization drop to scalar simulation of the real
kernel code.  Fast mode is deterministic, conserves the reference
string's word counts exactly, and prices every access with the same
latency arithmetic, but approximates three things: batched accesses do
not contend for buses or switch ports (no queueing delay), the ATC is
treated as unbounded (no refill cost), and a concurrent shootdown takes
effect for a thread at its next batch boundary rather than mid-stretch.
It therefore refuses ``check_expected``, probes and protocol tracing --
exactness claims belong to exact mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from ..analysis.costmodel import run_counters
from ..core.instrumentation import MemoryReport
from ..kernel.kernel import Kernel
from ..machine.machine import AccessOutcome, Machine
from ..machine.params import MachineParams
from ..machine.pmap import Rights
from ..runtime.executor import ThreadProcess, _cpu_resource
from ..runtime.sync import Broadcast
from .bundle import (
    K_DELAY,
    K_FIRE,
    K_GETTIME,
    K_MIGRATE,
    K_READ,
    K_RMW,
    K_THINK,
    K_WAIT,
    K_WRITE,
    ReplayError,
    TraceBundle,
    load_trace,
)

#: decoded-stream tag for a memory op pre-split into per-page runs
K_MEM = 10

#: machine-parameter overrides that would invalidate the recorded
#: reference string (virtual addresses, run splits, processor ids)
_STRUCTURAL_PARAMS = ("page_bytes", "word_bytes", "n_processors")


@dataclass
class ReplayResult:
    """Everything measured in one replay."""

    kernel: Kernel
    sim_time_ns: int
    report: MemoryReport
    events_executed: int
    counters: dict
    thread_results: list
    probe: Any = None
    mode: str = "exact"
    #: ops costed inside vectorized windows (fast mode only)
    batched_ops: int = 0
    #: vectorized windows committed (fast mode only)
    windows: int = 0

    @property
    def sim_time_ms(self) -> float:
        return self.sim_time_ns / 1e6

    def __repr__(self) -> str:
        return (
            f"<ReplayResult {self.sim_time_ms:.3f} ms "
            f"faults={self.report.total_faults}>"
        )


def _decode_stream(arr, wpp: int) -> list[tuple]:
    """Turn one (n, 4) op array into dispatch-ready tuples, splitting
    memory ops into per-page runs at the recording page size."""
    decoded: list[tuple] = []
    for kind, a, b, _c in arr.tolist():
        k = int(kind)
        if k in (K_READ, K_WRITE, K_RMW):
            va = int(a)
            n = 1 if k == K_RMW else int(b)
            vpage, offset = divmod(va, wpp)
            runs = []
            while n > 0:
                take = min(n, wpp - offset)
                runs.append((vpage, take))
                vpage += 1
                offset = 0
                n -= take
            decoded.append((K_MEM, k != K_READ, tuple(runs)))
        elif k in (K_THINK, K_DELAY):
            decoded.append((k, a))
        elif k == K_WAIT:
            decoded.append((k, int(a), int(b)))
        elif k in (K_FIRE, K_MIGRATE):
            decoded.append((k, int(a)))
        elif k == K_GETTIME:
            decoded.append((k,))
        else:
            raise ReplayError(f"unknown op kind {k} in trace stream")
    return decoded


def _fast_arrays(decoded: list[tuple]) -> dict:
    """Static per-op arrays for fast-mode windows.

    ``kind`` classifies each decoded op: 0 = pure delay on the issuing
    cpu (think, gettime), 1 = single-run memory reference, 2 = scalar
    only (sync, migrate, delay, page-crossing memory op).  ``nso[i]``
    is the index of the next scalar-only op at or after ``i``, so a
    window's stretch end is an O(1) lookup; the ``mcum``/``wcum``
    cumulative sums make a window's access and word counts O(1) too.
    Think slots carry vpage -1, which indexes the always-mapped
    sentinel column of the classification mirror.  Everything here
    depends only on the decode (recording page size), never on the
    variant.
    """
    m = len(decoded)
    kind = np.full(m, 2, dtype=np.uint8)
    vpage = np.full(m, -1, dtype=np.int64)
    nn = np.zeros(m, dtype=np.float64)
    wr = np.zeros(m, dtype=bool)
    for i, op in enumerate(decoded):
        k = op[0]
        if k == K_MEM:
            runs = op[2]
            if len(runs) == 1:
                kind[i] = 1
                vpage[i], take = runs[0]
                nn[i] = take
                wr[i] = op[1]
        elif k == K_THINK:
            kind[i] = 0
            nn[i] = op[1]
        elif k == K_GETTIME:
            kind[i] = 0
    scalar_idx = np.nonzero(kind == 2)[0]
    if m == 0 or len(scalar_idx) == 0:
        nso = np.full(m, m, dtype=np.int64)
    else:
        j = np.searchsorted(scalar_idx, np.arange(m))
        nso = np.where(
            j < len(scalar_idx),
            scalar_idx[np.minimum(j, len(scalar_idx) - 1)],
            m,
        ).astype(np.int64)
    mem = kind == 1
    nnz = np.where(mem, nn, 0.0)
    zero = np.zeros(1)
    return {
        "kind": kind, "vpage": vpage, "nn": nn, "wr": wr,
        "wri8": wr.astype(np.int8), "mem": mem, "nnz": nnz,
        "nso": nso,
        "mcum": np.concatenate([zero, np.cumsum(mem)]),
        "wcum": np.concatenate([zero, np.cumsum(nnz)]),
    }


class ReplayThreadProcess(ThreadProcess):
    """Drives one thread's decoded op stream instead of a generator."""

    __slots__ = ("ops", "pos", "channels", "_wake", "_consts")

    def __init__(self, kernel, thread, cpu, decoded, channels) -> None:
        super().__init__(kernel, thread, None, cpu)
        self.ops = decoded
        self.pos = 0
        self.channels = channels
        # one reusable callback instead of a fresh closure per op
        self._wake = lambda: self._resume(None)
        # immutable timing constants, hoisted out of the per-op path
        p = kernel.params
        self._consts = (
            p.t_module_service, p.t_switch_service, p.t_local,
            p.t_remote_read, p.t_remote_write,
        )

    def _commit(self, end, value=None) -> None:
        # same arithmetic as ThreadProcess._commit, but the common
        # value-less resume reuses the bound callback
        engine = self.engine
        now = engine.now
        end = int(round(end if end > now else now))
        cpu = self.cpu
        if end > cpu.busy_until:
            cpu.busy_until = end
        engine.schedule_at(
            end,
            self._wake if value is None else (lambda: self._resume(value)),
        )

    def _resume(self, value) -> None:
        # the generator is gone; step the cursor instead.  Fires, satisfied
        # waits and GetTime are synchronous in the live executor too, so
        # looping over them here keeps the engine-event structure identical.
        try:
            ops = self.ops
            n = len(ops)
            engine = self.engine
            istate = self.kernel.machine.interrupts.state
            while True:
                pos = self.pos
                if pos >= n:
                    self._finish(result=None)
                    return
                op = ops[pos]
                self.pos = pos + 1
                k = op[0]
                if k == K_MEM:
                    # ThreadProcess._begin inlined (same arithmetic)
                    st = istate[self.thread.processor]
                    penalty = st.pending_penalty
                    st.pending_penalty = 0.0
                    now = engine.now
                    busy = self.cpu.busy_until
                    t = int(round(
                        (now if now > busy else busy) + penalty))
                    t = self._mem(op[2], op[1], t)
                    self._commit(t)
                    return
                if k == K_THINK:
                    st = istate[self.thread.processor]
                    penalty = st.pending_penalty
                    st.pending_penalty = 0.0
                    now = engine.now
                    busy = self.cpu.busy_until
                    start = int(round(
                        (now if now > busy else busy) + penalty))
                    self._commit(start + op[1])
                    return
                if k == K_FIRE:
                    self.channels[op[1]].fire()
                    continue
                if k == K_WAIT:
                    ch = self.channels[op[1]]
                    if ch.version > op[2]:
                        continue  # the live path resumes synchronously
                    ch.event.wait(self._resume)
                    return
                if k == K_GETTIME:
                    continue
                if k == K_DELAY:
                    self.engine.schedule(op[1], self._wake)
                    return
                if k == K_MIGRATE:
                    start = self._begin()
                    cost = self.kernel.threads.migrate(self.thread, op[1])
                    self.cpu = _cpu_resource(self.kernel, op[1])
                    self._commit(start + cost)
                    return
                raise ReplayError(f"unknown decoded op {op!r}")
        except Exception as exc:  # noqa: BLE001 - recorded, like a crash
            self._finish(error=exc)

    def _mem(self, runs, write: bool, t: int) -> int:
        """Cost one memory op's per-page runs starting at time ``t``.

        The ATC-hit case inlines ``MMU.translate`` + ``Machine.access``
        (same arithmetic, same counter updates); everything else takes
        the faithful slow path.  Counter equivalence holds because the
        fast path touches the ATC only on a sufficient-rights hit --
        any other case falls through to ``translate``'s single
        authoritative lookup, exactly as the live executor does.
        """
        kernel = self.kernel
        machine = kernel.machine
        coherent = kernel.coherent
        proc = self.thread.processor
        aspace_id = self.thread.aspace_id
        atc = machine.mmus[proc].atc
        entries = atc._entries
        move_to_end = entries.move_to_end
        modules = machine.modules
        t_module, t_switch, t_local, t_rread, t_rwrite = self._consts
        probe = coherent.access_probe
        refcount = coherent.reference_counting
        queue_delay_ns = machine.queue_delay_ns
        for vpage, n in runs:
            key = (aspace_id, vpage)
            entry = entries.get(key)
            # rights check via plain int comparison (Rights values are
            # only ever NONE=0, READ=1, WRITE=3; IntFlag.__and__ is slow)
            if entry is None or not (
                entry.rights == 3 or (entry.rights == 1 and not write)
            ):
                t = self._run_slow(vpage, n, write, t)
                continue
            move_to_end(key)
            atc.hits += 1
            entry.referenced = True
            if write:
                entry.modified = True
            dst = entry.frame.module_index
            module = modules[dst]
            remote = proc != dst
            tt = t
            if remote:
                route = machine.topology.route(proc, dst)
                n_hops = len(route)
                for port in route:
                    _, tt = port.occupy(tt, n * t_switch)
                t_word = t_rwrite if write else t_rread
                service_per_word = t_module + n_hops * t_switch
            else:
                t_word = t_local
                service_per_word = t_module
            # FifoResource.occupy(tt, n * t_module) inlined
            bus = module.bus
            duration = int(round(n * t_module))
            busy = bus.busy_until
            start = tt if tt > busy else busy
            bus.wait_time += start - tt
            tt = start + duration
            bus.busy_until = tt
            bus.busy_time += duration
            bus.requests += 1
            extra = t_word - service_per_word
            if extra < 0.0:
                extra = 0.0
            completion = int(round(tt + n * extra))
            service_floor = t + int(round(n * service_per_word))
            queue_delay = tt - service_floor
            if queue_delay < 0:
                queue_delay = 0
            if remote:
                machine.remote_words[proc] += n
                if write:
                    machine.remote_write_words[proc] += n
            else:
                machine.local_words[proc] += n
            queue_delay_ns[proc] += queue_delay
            module.words_served += n
            module.accesses_served += 1
            cpage_index = entry.cpage_index
            if remote and refcount and cpage_index is not None:
                coherent.note_remote_access(cpage_index, proc, n)
            if probe is not None and cpage_index is not None:
                probe.note(
                    cpage_index,
                    proc,
                    write,
                    AccessOutcome(
                        completion=completion,
                        queue_delay=queue_delay,
                        remote=remote,
                        words=n,
                    ),
                )
            t = completion
        return t

    def _run_slow(self, vpage: int, n: int, write: bool, t: int) -> int:
        """``ThreadProcess._access_run`` minus the data slice."""
        kernel = self.kernel
        machine = kernel.machine
        proc = self.thread.processor
        mmu = machine.mmus[proc]
        aspace_id = self.thread.aspace_id
        for _attempt in range(3):
            result = mmu.translate(aspace_id, vpage, write)
            t += int(round(result.cost))
            if result.entry is not None:
                outcome = machine.access(
                    proc, result.entry.frame, n, write, t
                )
                if (
                    outcome.remote
                    and kernel.coherent.reference_counting
                    and result.entry.cpage_index is not None
                ):
                    kernel.coherent.note_remote_access(
                        result.entry.cpage_index, proc, n
                    )
                probe = kernel.coherent.access_probe
                if probe is not None and (
                    result.entry.cpage_index is not None
                ):
                    probe.note(
                        result.entry.cpage_index, proc, write, outcome
                    )
                return outcome.completion
            fault = kernel.fault(proc, aspace_id, vpage, write, t)
            t = fault.completion
        raise ReplayError(
            f"cpu{proc} could not obtain a translation for vpage {vpage} "
            f"(aspace {aspace_id}, write={write}) after repeated faults"
        )


class FastReplayThreadProcess(ReplayThreadProcess):
    """Array-at-a-time replay: one engine event per fault-free stretch.

    A *window* is a run of consecutive think/gettime ops and
    single-run memory references whose pages are mapped with
    sufficient rights in this processor's pmap.  The whole window is
    costed in one vectorized pass -- per-run latency math identical to
    the exact path, minus bus/port queueing -- and committed as a
    single engine event.  Anything else (faults, page-crossing runs,
    sync, migration) drops to the scalar machinery of the parent
    class, so the protocol path is still the real kernel code.

    Classification is a numpy mirror of the pmap (mapped rights and
    backing module per vpage), kept current by precise dirty-page
    deltas: every fault dirties the faulted page's cpage siblings
    (fault-handler mutations never leave the faulted cpage), a defrost
    action bumps a full-rebuild epoch, and a migration rebuilds the
    migrating thread's own mirror.  A shootdown therefore takes effect
    for a *batching* thread at its next window boundary -- the
    documented staleness of fast mode.

    Every window is costed in O(1) numpy work -- durations, word
    counts and module-counter contributions come from precomputed
    per-slot cumulative sums that assume local service -- and the rare
    slots referencing a remote-mapped page (words moved remotely are a
    fraction of a percent of the total) are then adjusted one by one
    in plain scalar arithmetic.  Module/bus counters accumulate in
    arrays and flush once at the end of the replay.
    """

    __slots__ = (
        "_kind", "_vpage", "_nn", "_wr", "_wri8",
        "_nso", "_mcum", "_wcum", "_shared", "_sibs", "_epoch",
        "_seen", "_cls", "_any_remote", "_hops", "_rns", "_rnm",
        "_rnmc",
        "_tword", "_dur_base", "_dbc", "_nmod", "_t_module",
        "_t_switch", "_acc_served", "_acc_count", "_acc_busy",
        "batched_ops", "windows",
    )

    def __init__(
        self, kernel, thread, cpu, decoded, channels, fast, nv, hops,
        shared, sibs,
    ) -> None:
        super().__init__(kernel, thread, cpu, decoded, channels)
        self._kind = fast["kind"]
        self._vpage = fast["vpage"]
        self._nn = fast["nn"]
        self._wr = fast["wr"]
        self._wri8 = fast["wri8"]
        self._nso = fast["nso"]
        self._mcum = fast["mcum"]
        self._wcum = fast["wcum"]
        t_module, t_switch, t_local, t_rr, t_rw = self._consts
        self._t_module = t_module
        self._t_switch = t_switch
        rint = np.rint
        nn = self._nn
        mem = fast["mem"]
        # variant-params-dependent slot costs, one vector pass each
        self._rns = rint(nn * t_switch)
        self._rnm = np.where(mem, rint(nn * t_module), 0.0)
        extra_local = t_local - t_module
        if extra_local < 0.0:
            extra_local = 0.0
        dur_local = self._rnm + np.where(
            mem, rint(nn * extra_local), 0.0)
        # per-slot duration assuming every reference is a local hit
        self._dur_base = np.where(
            mem, dur_local, np.where(self._kind == 0, nn, 0.0))
        zero = np.zeros(1)
        self._dbc = np.concatenate([zero, np.cumsum(self._dur_base)])
        self._rnmc = np.concatenate([zero, np.cumsum(self._rnm)])
        self._tword = np.where(self._wr, t_rw, t_rr)
        self._shared = shared
        self._sibs = sibs
        self._epoch = -1  # forces the initial full rebuild
        self._seen = 0
        # classification mirror, one gather classifies a window:
        # cls[w, v] = backing module if vpage v is mapped with
        # (write if w) rights, -2 if a reference must fault; column -1
        # is the always-ok sentinel (-1) that think slots index
        self._cls = np.full((2, nv + 1), -2, dtype=np.int64)
        self._any_remote = False
        self._hops = hops
        self._nmod = len(kernel.machine.modules)
        self._acc_served = np.zeros(self._nmod)
        self._acc_count = np.zeros(self._nmod)
        self._acc_busy = np.zeros(self._nmod)
        self.batched_ops = 0
        self.windows = 0

    def _run_slow(self, vpage: int, n: int, write: bool, t: int) -> int:
        t = super()._run_slow(vpage, n, write, t)
        # the fault mutated mappings machine-wide, but only for the
        # faulted page's cpage: dirty its sibling vpages everywhere
        self._shared["dirty"].extend(self._sibs.get(vpage, (vpage,)))
        return t

    def _full_rebuild(self) -> None:
        shared = self._shared
        cls = self._cls
        cls.fill(-2)
        cls[0, -1] = -1
        cls[1, -1] = -1
        pmap = self.kernel.machine.mmus[self.thread.processor].pmap_for(
            self.thread.aspace_id
        )
        proc = self.thread.processor
        any_remote = False
        if pmap is not None:
            for vp, entry in pmap._entries.items():
                mi = entry.frame.module_index
                cls[0, vp] = mi  # entries never carry Rights.NONE
                cls[1, vp] = mi if entry.rights == 3 else -2
                if mi != proc:
                    any_remote = True
        self._any_remote = any_remote
        self._epoch = shared["epoch"]
        self._seen = len(shared["dirty"])

    def _sync_cls(self) -> None:
        shared = self._shared
        if self._epoch != shared["epoch"]:
            self._full_rebuild()
            return
        dirty = shared["dirty"]
        seen = self._seen
        if seen == len(dirty):
            return
        pmap = self.kernel.machine.mmus[self.thread.processor].pmap_for(
            self.thread.aspace_id
        )
        lookup = pmap.lookup if pmap is not None else None
        cls = self._cls
        proc = self.thread.processor
        for vp in dirty[seen:]:
            entry = lookup(vp) if lookup is not None else None
            if entry is None:
                cls[0, vp] = -2
                cls[1, vp] = -2
            else:
                mi = entry.frame.module_index
                cls[0, vp] = mi
                cls[1, vp] = mi if entry.rights == 3 else -2
                if mi != proc:
                    self._any_remote = True
        self._seen = len(dirty)

    def _window(self, pos: int) -> bool:
        """Cost ops[pos:stretch-end] in one event; False if ops[pos]
        itself needs the scalar slow path."""
        self._sync_cls()
        cls = self._cls
        wri8 = self._wri8
        vp = self._vpage
        # scalar pre-checks: a faulting first op or a one-op window is
        # cheaper on the parent's scalar path than as a numpy window
        if cls[wri8[pos], vp[pos]] == -2:
            return False
        stop = int(self._nso[pos])
        if stop - pos == 1:
            return False
        m = cls[wri8[pos:stop], vp[pos:stop]]
        if int(m.min()) == -2:  # a fault inside the stretch: truncate
            fb = int(np.argmax(m == -2))
            if fb == 0:
                return False
            stop = pos + fb
            m = m[:fb]
        proc = self.thread.processor
        machine = self.kernel.machine
        n_mem = int(self._mcum[stop] - self._mcum[pos])
        wtot = self._wcum[stop] - self._wcum[pos]
        # assume local service for the whole window (the precomputed
        # cumsums), then correct the rare remote-mapped slots
        total = self._dbc[stop] - self._dbc[pos]
        lw = wtot
        if n_mem:
            served = self._acc_served
            count = self._acc_count
            busy = self._acc_busy
            served[proc] += wtot
            count[proc] += n_mem
            busy[proc] += self._rnmc[stop] - self._rnmc[pos]
            machine.mmus[proc].atc.hits += n_mem
            rsel = (
                np.nonzero((m >= 0) & (m != proc))[0]
                if self._any_remote else ()
            )
            if len(rsel):
                t_mod = self._t_module
                t_sw = self._t_switch
                hrow = self._hops[proc]
                rw = rww = 0.0
                for i in rsel.tolist():
                    s = pos + i
                    mi = int(m[i])
                    h = hrow[mi]
                    w = float(self._nn[s])
                    rnm_i = float(self._rnm[s])
                    extra = float(self._tword[s]) - (t_mod + h * t_sw)
                    if extra < 0.0:
                        extra = 0.0
                    dur_r = (h * float(self._rns[s]) + rnm_i
                             + round(w * extra))
                    total += dur_r - float(self._dur_base[s])
                    rw += w
                    if self._wr[s]:
                        rww += w
                    served[proc] -= w
                    served[mi] += w
                    count[proc] -= 1
                    count[mi] += 1
                    busy[proc] -= rnm_i
                    busy[mi] += rnm_i
                lw = wtot - rw
                machine.remote_words[proc] += int(rw)
                machine.remote_write_words[proc] += int(rww)
        machine.local_words[proc] += int(lw)
        # _begin/_commit arithmetic, once per window
        st = machine.interrupts.state[proc]
        penalty = st.pending_penalty
        st.pending_penalty = 0.0
        engine = self.engine
        now = engine.now
        busy_until = self.cpu.busy_until
        t0 = int(round(
            (now if now > busy_until else busy_until) + penalty
        ))
        end = t0 + int(round(float(total)))
        self.pos = stop
        if end > self.cpu.busy_until:
            self.cpu.busy_until = end
        self.windows += 1
        self.batched_ops += stop - pos
        engine.schedule_at(end, self._wake)
        return True

    def _flush_counters(self) -> None:
        """Apply the deferred module/bus counter accumulations."""
        machine = self.kernel.machine
        nmod = self._nmod
        served = self._acc_served
        count = self._acc_count
        busy = self._acc_busy
        for i in range(nmod):
            c = int(count[i])
            if not c:
                continue
            module = machine.modules[i]
            module.words_served += int(served[i])
            module.accesses_served += c
            bus = module.bus
            bus.busy_time += int(busy[i])
            bus.requests += c

    def _resume(self, value) -> None:
        try:
            ops = self.ops
            n = len(ops)
            kind = self._kind
            engine = self.engine
            istate = self.kernel.machine.interrupts.state
            while True:
                pos = self.pos
                if pos >= n:
                    self._finish(result=None)
                    return
                if kind[pos] != 2 and self._window(pos):
                    return
                op = ops[pos]
                self.pos = pos + 1
                k = op[0]
                if k == K_MEM:
                    st = istate[self.thread.processor]
                    penalty = st.pending_penalty
                    st.pending_penalty = 0.0
                    now = engine.now
                    busy = self.cpu.busy_until
                    t = int(round(
                        (now if now > busy else busy) + penalty))
                    t = self._mem(op[2], op[1], t)
                    self._commit(t)
                    return
                if k == K_THINK:
                    st = istate[self.thread.processor]
                    penalty = st.pending_penalty
                    st.pending_penalty = 0.0
                    now = engine.now
                    busy = self.cpu.busy_until
                    start = int(round(
                        (now if now > busy else busy) + penalty))
                    self._commit(start + op[1])
                    return
                if k == K_FIRE:
                    self.channels[op[1]].fire()
                    continue
                if k == K_WAIT:
                    ch = self.channels[op[1]]
                    if ch.version > op[2]:
                        continue
                    ch.event.wait(self._resume)
                    return
                if k == K_GETTIME:
                    continue
                if k == K_DELAY:
                    engine.schedule(op[1], self._wake)
                    return
                if k == K_MIGRATE:
                    start = self._begin()
                    cost = self.kernel.threads.migrate(
                        self.thread, op[1])
                    self.cpu = _cpu_resource(self.kernel, op[1])
                    self._epoch = -1  # new cpu, new pmap: rebuild mirror
                    self._commit(start + cost)
                    return
                raise ReplayError(f"unknown decoded op {op!r}")
        except Exception as exc:  # noqa: BLE001 - recorded, like a crash
            self._finish(error=exc)


def _build_kernel(
    bundle: TraceBundle,
    policy: Optional[str],
    policy_args: Optional[dict],
    defrost: Optional[bool],
    defrost_period,
    params: Optional[dict],
    trace: bool,
    metrics,
    dataless: bool,
) -> Kernel:
    config = bundle.config
    try:
        base = MachineParams(**config["params"])
    except (KeyError, TypeError) as exc:
        raise ReplayError(f"bundle has unusable machine params: {exc}")
    if params:
        forbidden = sorted(set(params) & set(_STRUCTURAL_PARAMS))
        if forbidden:
            raise ReplayError(
                f"cannot override {', '.join(forbidden)}: the recorded "
                "reference string depends on them structurally"
            )
        base = base.scaled(**params)
    name = policy if policy is not None else config.get("policy")
    if policy_args is not None:
        pargs = dict(policy_args)
    elif policy is not None:
        pargs = {}
    else:
        pargs = dict(config.get("policy_args") or {})
    policy_obj = None
    if name is not None:
        from ..policy.registry import make_policy

        try:
            policy_obj = make_policy(name, pargs)
        except ValueError as exc:
            raise ReplayError(str(exc))
    if metrics is True:
        from ..telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry(enabled=True)
    elif metrics is False:
        metrics = None
    machine = Machine(base, dataless=dataless)
    return Kernel(
        machine=machine,
        policy=policy_obj,
        defrost_enabled=(
            bool(config.get("defrost", True)) if defrost is None
            else defrost
        ),
        defrost_period=(
            config.get("defrost_period") if defrost_period is None
            else defrost_period
        ),
        trace=trace,
        metrics=metrics,
    )


def _rebuild_layout(
    kernel: Kernel, layout: dict
) -> tuple[list[Broadcast], list]:
    vm = kernel.vm
    for obj_l in layout.get("objects", []):
        obj = vm.create_object(obj_l["n_pages"], label=obj_l["label"])
        if obj.oid != obj_l["oid"] or (
            obj.cpages[0].index != obj_l["cpage_start"]
        ):
            raise ReplayError(
                f"layout rebuild diverged at object {obj_l['oid']}"
            )
        for cpage, placement in zip(obj.cpages, obj_l["placement"]):
            cpage.placement_module = placement
    for asp_l in layout.get("aspaces", []):
        aspace = vm.create_address_space()
        if aspace.asid != asp_l["asid"]:
            raise ReplayError(
                f"layout rebuild diverged at aspace {asp_l['asid']}"
            )
        for b in asp_l["bindings"]:
            vm.bind(
                aspace,
                b["vpage_start"],
                vm.objects[b["oid"]],
                rights=Rights(b["rights"]),
                obj_page_start=b["obj_page_start"],
                n_pages=b["n_pages"],
            )
    channels = []
    for ch_l in layout.get("channels", []):
        ch = Broadcast(kernel.engine, ch_l["name"])
        ch.version = ch_l["base_version"]
        channels.append(ch)
    threads = []
    for t_l in layout.get("threads", []):
        thread = kernel.threads.spawn(
            t_l["asid"], t_l["processor"], name=t_l["name"]
        )
        if thread.tid != t_l["tid"]:
            raise ReplayError(
                f"layout rebuild diverged at thread {t_l['tid']}"
            )
        threads.append(thread)
    return channels, threads


def _verify_expected(result: ReplayResult, expected: dict) -> None:
    problems = []
    if result.sim_time_ns != expected.get("sim_time_ns"):
        problems.append(
            f"sim_time_ns: live {expected.get('sim_time_ns')} "
            f"vs replay {result.sim_time_ns}"
        )
    if result.events_executed != expected.get("events_executed"):
        problems.append(
            f"events_executed: live {expected.get('events_executed')} "
            f"vs replay {result.events_executed}"
        )
    for key, want in (expected.get("counters") or {}).items():
        got = result.counters.get(key)
        if got != want:
            problems.append(f"counters[{key}]: live {want} vs replay {got}")
    if problems:
        raise ReplayError(
            "replay diverged from the recording run under the recording "
            "configuration: " + "; ".join(problems)
        )


def replay_trace(
    bundle: Union[TraceBundle, str, Path],
    policy: Optional[str] = None,
    policy_args: Optional[dict] = None,
    defrost: Optional[bool] = None,
    defrost_period=None,
    params: Optional[dict] = None,
    trace: bool = False,
    metrics=False,
    probe: bool = False,
    dataless: bool = True,
    check_expected: bool = False,
    check_invariants: bool = True,
    max_events: Optional[int] = None,
    stall_limit_ns: float = 30e9,
    mode: str = "exact",
) -> ReplayResult:
    """Re-simulate a trace bundle (or a path to one).

    With no overrides, the replay runs the recording configuration and --
    with ``check_expected=True`` -- is verified to reproduce the live
    run's completion time, event count and protocol counters exactly.
    ``policy``/``policy_args``/``defrost``/``defrost_period``/``params``
    select a variant; ``None`` means "as recorded".  ``mode="fast"``
    selects array-at-a-time cost accounting (see module docstring): much
    faster for policy sweeps, deterministic, but approximate on queueing
    and shootdown latency, so it cannot back exactness claims.
    """
    if mode not in ("exact", "fast"):
        raise ReplayError(f"unknown replay mode {mode!r}")
    if mode == "fast" and (check_expected or probe or trace or metrics):
        raise ReplayError(
            "fast mode is approximate: check_expected, probe, trace and "
            "metrics require mode='exact'"
        )
    if not isinstance(bundle, TraceBundle):
        bundle = load_trace(bundle)
    kernel = _build_kernel(
        bundle, policy, policy_args, defrost, defrost_period, params,
        trace, metrics, dataless,
    )
    channels, threads = _rebuild_layout(kernel, bundle.layout)
    if len(threads) != len(bundle.streams):
        raise ReplayError(
            f"bundle has {len(bundle.streams)} op streams for "
            f"{len(threads)} threads"
        )
    probe_obj = None
    if probe:
        from ..profile import AccessProbe

        probe_obj = AccessProbe.install(kernel.coherent)
    wpp = kernel.params.words_per_page
    # decoding depends only on the recording page size (structural
    # params cannot be overridden), so a variant sweep over one bundle
    # decodes once and shares the read-only streams
    decoded_streams = getattr(bundle, "_decoded", None)
    if decoded_streams is None:
        decoded_streams = [
            _decode_stream(arr, wpp) for arr in bundle.streams
        ]
        bundle._decoded = decoded_streams
    start = kernel.engine.now
    processes = []
    if mode == "fast":
        fast_streams = getattr(bundle, "_fast", None)
        if fast_streams is None:
            fast_streams = [_fast_arrays(d) for d in decoded_streams]
            bundle._fast = fast_streams
        # mirror arrays must cover every bindable vpage, not just the
        # traced ones: the fault handler may map neighbours
        nv = 1
        for asp in bundle.layout.get("aspaces", []):
            for b in asp["bindings"]:
                nv = max(nv, b["vpage_start"] + b["n_pages"] + 1)
        for fs in fast_streams:
            vp = fs["vpage"]
            if len(vp):
                nv = max(nv, int(vp.max()) + 1)
        # vpage -> every vpage backed by the same coherent page: a
        # fault's pmap mutations never leave the faulted cpage, so
        # these are exactly the mirror entries it can invalidate
        sibs = getattr(bundle, "_sibs", None)
        if sibs is None:
            obj_start = {
                o["oid"]: o["cpage_start"]
                for o in bundle.layout.get("objects", [])
            }
            by_cpage: dict[int, list] = {}
            for asp in bundle.layout.get("aspaces", []):
                for b in asp["bindings"]:
                    base = obj_start[b["oid"]] + b["obj_page_start"]
                    for i in range(b["n_pages"]):
                        by_cpage.setdefault(base + i, []).append(
                            b["vpage_start"] + i)
            sibs = {}
            for vps in by_cpage.values():
                group = tuple(sorted(set(vps)))
                for vp in group:
                    sibs[vp] = group
            bundle._sibs = sibs
        n_mod = len(kernel.machine.modules)
        topo = kernel.machine.topology
        hops = np.array(
            [[float(len(topo.route(s, d))) if s != d else 0.0
              for d in range(n_mod)] for s in range(n_mod)]
        )
        shared = {"dirty": [], "epoch": 0}
        # a defrost action invalidates an unknown set of mappings:
        # force full mirror rebuilds
        kernel.coherent.defrost.post_action_hooks.append(
            lambda: shared.__setitem__("epoch", shared["epoch"] + 1)
        )
        for thread, decoded, fs in zip(
            threads, decoded_streams, fast_streams
        ):
            cpu = _cpu_resource(kernel, thread.processor)
            processes.append(FastReplayThreadProcess(
                kernel, thread, cpu, decoded, channels, fs, nv, hops,
                shared, sibs,
            ))
    else:
        for thread, decoded in zip(threads, decoded_streams):
            cpu = _cpu_resource(kernel, thread.processor)
            processes.append(
                ReplayThreadProcess(kernel, thread, cpu, decoded,
                                    channels)
            )

    n_threads = len(processes)
    state = {"finished": 0, "crashed": False}

    def _note_finish(p) -> None:
        state["finished"] += 1
        if p.error is not None:
            state["crashed"] = True

    for proc in processes:
        proc.on_finish(_note_finish)
        proc.start()

    last_activity = [kernel.engine.now]
    events_since_check = [0]

    def stop_when() -> bool:
        if state["crashed"] or state["finished"] == n_threads:
            return True
        events_since_check[0] += 1
        if events_since_check[0] & 63:
            return False
        busy = max(
            (c.busy_until for c in getattr(
                kernel, "_cpu_resources", {}).values()),
            default=0,
        )
        if busy > last_activity[0]:
            last_activity[0] = busy
        if kernel.engine.now - last_activity[0] > stall_limit_ns:
            raise ReplayError(
                f"no thread progress for {stall_limit_ns / 1e9:.1f} "
                "simulated seconds; the variant configuration deadlocked "
                "the recorded reference string"
            )
        return False

    kernel.engine.run(max_events=max_events, stop_when=stop_when)
    if mode == "fast":
        for proc in processes:
            proc._flush_counters()
    results = [p.check() for p in processes]
    unfinished = [p.name for p in processes if not p.finished]
    if unfinished:
        raise ReplayError(f"threads never finished: {unfinished}")
    if check_invariants:
        kernel.check_invariants()
    result = ReplayResult(
        kernel=kernel,
        sim_time_ns=kernel.engine.now - start,
        report=kernel.report(),
        events_executed=int(kernel.engine.events_executed),
        counters={},
        thread_results=results,
        probe=probe_obj,
        mode=mode,
        batched_ops=sum(
            getattr(p, "batched_ops", 0) for p in processes),
        windows=sum(getattr(p, "windows", 0) for p in processes),
    )
    result.counters = run_counters(result)
    if check_expected:
        _verify_expected(result, bundle.expected)
    return result
