"""Record one live run into a ``repro-trace/1`` bundle.

The recorder piggybacks on the normal execution path: each thread runs as
a :class:`RecordingThreadProcess` -- a :class:`ThreadProcess` that encodes
every operation its generator yields before executing it normally.  The
simulation is therefore bit-identical to an unrecorded run (the A/B suite
asserts this); recording only *observes*.

Two things need care beyond logging yielded ops:

* **Wakeup causality.**  Programs fire :class:`Broadcast` channels from
  plain Python inside their generators (lock releases, barrier arrivals)
  without yielding an operation, and waiter wakeups depend on channel
  versions.  A class-level hook on :meth:`Broadcast.fire` records each
  fire into the stream of the thread whose generator is currently
  executing, at its exact position between that thread's ops -- so replay
  fires the channel at the same logical point and every recorded
  ``WaitNewer`` sees the same version arithmetic.

* **Data-dependent control flow.**  Generators branch on values (a
  test-and-set result, a read of a flag page).  The trace does not store
  data; it stores the *reference string the branches produced*.  Replay
  under the recording configuration is exact; replay under a variant
  holds the reference string fixed -- the same approximation as the
  paper's cost model.  Operations whose control flow cannot be flattened
  this way (ports, raw event waits) raise :class:`RecordError`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..analysis.costmodel import run_counters
from ..runtime import ops
from ..runtime.executor import ThreadProcess, _cpu_resource
from ..runtime.program import Program, ProgramAPI
from ..runtime.run import RunResult
from ..runtime.sync import Broadcast
from ..sim.process import Delay, Op
from .bundle import (
    K_DELAY,
    K_FIRE,
    K_GETTIME,
    K_MIGRATE,
    K_READ,
    K_RMW,
    K_THINK,
    K_WAIT,
    K_WRITE,
    RecordError,
    TraceBundle,
)


class TraceRecorder:
    """Accumulates per-thread op streams and the broadcast-channel table."""

    def __init__(self) -> None:
        #: per-local-tid lists of (kind, a, b, c) rows
        self.streams: list[list[tuple]] = []
        #: local tid of the thread whose generator is currently executing
        self.current: Optional[int] = None
        #: id(channel) -> (cid, channel, base_version).  The channel object
        #: itself is held: if it were collected, id() could be reused by a
        #: new channel and silently alias two channels in the trace.
        self._channels: dict = {}
        self._channel_order: list = []
        self.errors: list[str] = []

    def add_thread(self) -> int:
        self.streams.append([])
        return len(self.streams) - 1

    def _channel_id(self, channel: Broadcast, fired: bool) -> int:
        entry = self._channels.get(id(channel))
        if entry is not None:
            return entry[0]
        cid = len(self._channel_order)
        # the fire hook runs after the version increment, so a channel
        # first seen firing was at version - 1 when recording started;
        # one first seen in a WaitNewer has had no recorded fires yet
        base = channel.version - 1 if fired else channel.version
        self._channels[id(channel)] = (cid, channel, base)
        self._channel_order.append((channel, base))
        return cid

    def note_fire(self, channel: Broadcast) -> None:
        """Broadcast.fire hook: log the fire inline in the current thread."""
        cid = self._channel_id(channel, fired=True)
        if self.current is None:
            self.errors.append(
                f"broadcast {channel.name!r} fired outside any recorded "
                "thread; the replayer has no position to fire it from"
            )
            return
        self.streams[self.current].append((K_FIRE, float(cid), 0.0, 0.0))

    def log_op(self, local_tid: int, op: Op) -> None:
        self.streams[local_tid].append(self._encode(op))

    def _encode(self, op: Op) -> tuple:
        if isinstance(op, ops.Compute):
            return (K_THINK, float(op.ns), 0.0, 0.0)
        if isinstance(op, ops.Read):
            return (K_READ, float(op.va), float(op.n), 0.0)
        if isinstance(op, ops.Write):
            if np.isscalar(op.value) or isinstance(
                op.value, (int, np.integer)
            ):
                n = 1
            else:
                n = len(np.asarray(op.value))
            return (K_WRITE, float(op.va), float(n), 0.0)
        if isinstance(op, (ops.TestAndSet, ops.FetchAdd)):
            # a one-word write run; the returned value steered the live
            # generator, whose chosen path is what the stream records
            return (K_RMW, float(op.va), 0.0, 0.0)
        if isinstance(op, ops.Migrate):
            return (K_MIGRATE, float(op.processor), 0.0, 0.0)
        if isinstance(op, ops.WaitNewer):
            cid = self._channel_id(op.channel, fired=False)
            return (K_WAIT, float(cid), float(op.seen), 0.0)
        if isinstance(op, ops.GetTime):
            return (K_GETTIME, 0.0, 0.0, 0.0)
        if isinstance(op, Delay):
            return (K_DELAY, float(op.ns), 0.0, 0.0)
        raise RecordError(
            f"operation {op!r} is not replayable: its outcome carries "
            "data-dependent control flow the trace cannot capture "
            "(ports and raw event waits)"
        )

    def channel_layout(self) -> list[dict]:
        return [
            {"cid": i, "name": ch.name, "base_version": base}
            for i, (ch, base) in enumerate(self._channel_order)
        ]

    def stream_arrays(self) -> list[np.ndarray]:
        # float64 keeps fractional Compute/Delay durations exact through
        # the round trip (and integers below 2**53, far beyond any va)
        return [
            np.array(s, dtype=np.float64).reshape(len(s), 4)
            for s in self.streams
        ]


class RecordingThreadProcess(ThreadProcess):
    """A ThreadProcess that logs each yielded op before executing it."""

    __slots__ = ("rec", "local_tid")

    def __init__(self, rec, local_tid, kernel, thread, body, cpu) -> None:
        super().__init__(kernel, thread, body, cpu)
        self.rec = rec
        self.local_tid = local_tid

    # generator execution happens inside _resume/_throw; mark this thread
    # current for its duration so fires from plain Python land in the
    # right stream.  Save/restore handles nested synchronous resumes
    # (a satisfied WaitNewer resumes the generator within interpret).

    def _resume(self, value) -> None:
        rec = self.rec
        prev = rec.current
        rec.current = self.local_tid
        try:
            super()._resume(value)
        finally:
            rec.current = prev

    def _throw(self, exc) -> None:
        rec = self.rec
        prev = rec.current
        rec.current = self.local_tid
        try:
            super()._throw(exc)
        finally:
            rec.current = prev

    def interpret(self, op: Op) -> None:
        # encode before executing: a non-replayable op aborts the recording
        # loudly instead of leaving a silently truncated stream
        self.rec.log_op(self.local_tid, op)
        super().interpret(op)


def _capture_layout(kernel, thread_specs) -> dict:
    """Snapshot the post-setup VM image.

    Replay rebuilds objects/address spaces/threads by re-issuing the same
    creation calls in recorded order; ids are sequential on a fresh
    kernel, so the guards below pin the identity assumptions.
    """
    vm = kernel.vm
    objects = []
    for oid in sorted(vm.objects):
        obj = vm.objects[oid]
        if oid != len(objects):
            raise RecordError(
                f"object ids not sequential from zero (saw {oid}); "
                "recording needs a fresh kernel"
            )
        indices = [c.index for c in obj.cpages]
        if indices != list(range(indices[0], indices[0] + len(indices))):
            raise RecordError(
                f"object {oid} has non-contiguous coherent pages"
            )
        objects.append({
            "oid": oid,
            "label": obj.label,
            "n_pages": obj.n_pages,
            "cpage_start": indices[0],
            "placement": [c.placement_module for c in obj.cpages],
        })
    aspaces = []
    for asid in sorted(vm.aspaces):
        aspace = vm.aspaces[asid]
        if asid != len(aspaces):
            raise RecordError(
                f"address-space ids not sequential from zero (saw {asid})"
            )
        aspaces.append({
            "asid": asid,
            "bindings": [
                {
                    "vpage_start": b.vpage_start,
                    "n_pages": b.n_pages,
                    "oid": b.obj.oid,
                    "obj_page_start": b.obj_page_start,
                    "rights": int(b.rights),
                }
                for b in aspace.bindings
            ],
        })
    threads = []
    for i, spec in enumerate(thread_specs):
        t = spec.thread
        if t.tid != i:
            raise RecordError(
                f"thread ids not sequential from zero (saw {t.tid})"
            )
        threads.append({
            "tid": t.tid,
            "asid": t.aspace_id,
            "processor": t.processor,
            "name": t.name,
        })
    return {"objects": objects, "aspaces": aspaces, "threads": threads}


def record_program(
    kernel,
    program: Program,
    config: Optional[dict] = None,
    max_events: Optional[int] = None,
    check_invariants: bool = True,
    stall_limit_ns: float = 30e9,
) -> tuple[TraceBundle, RunResult]:
    """Run ``program`` on ``kernel`` (as ``run_program`` would) while
    recording a trace bundle.  Returns ``(bundle, result)``.

    ``config`` carries replay-relevant provenance the kernel object cannot
    answer for itself (workload name/args, policy name, defrost flags);
    :func:`record_spec` fills it from a bench point spec.  The resolved
    machine parameters are always captured from the kernel.
    """
    if Broadcast.recorder is not None:
        raise RecordError("another recording is already in progress")
    if (
        kernel.engine.now != 0
        or kernel.vm._next_oid
        or kernel.vm._next_asid
        or kernel.threads._next_tid
    ):
        raise RecordError(
            "recording needs a fresh kernel: replay rebuilds the layout "
            "by re-issuing creations with sequential ids from zero"
        )
    api = ProgramAPI(kernel)
    program.setup(api)
    if not api.thread_specs:
        raise ValueError(f"{program.name}: setup spawned no threads")
    layout = _capture_layout(kernel, api.thread_specs)
    rec = TraceRecorder()
    start = kernel.engine.now
    processes = []
    for spec in api.thread_specs:
        cpu = _cpu_resource(kernel, spec.thread.processor)
        local_tid = rec.add_thread()
        processes.append(
            RecordingThreadProcess(
                rec, local_tid, kernel, spec.thread, spec.body, cpu
            )
        )

    n_threads = len(processes)
    state = {"finished": 0, "crashed": False}

    def _note_finish(p) -> None:
        state["finished"] += 1
        if p.error is not None:
            state["crashed"] = True

    last_activity = [kernel.engine.now]
    events_since_check = [0]

    def stop_when() -> bool:
        if state["crashed"] or state["finished"] == n_threads:
            return True
        events_since_check[0] += 1
        if events_since_check[0] & 63:
            return False
        busy = max(
            (c.busy_until for c in getattr(
                kernel, "_cpu_resources", {}).values()),
            default=0,
        )
        if busy > last_activity[0]:
            last_activity[0] = busy
        if kernel.engine.now - last_activity[0] > stall_limit_ns:
            raise RuntimeError(
                f"{program.name}: no thread progress for "
                f"{stall_limit_ns / 1e9:.1f} simulated seconds while "
                "recording (deadlock in the simulated program?)"
            )
        return False

    # install the fire hook only now: setup-time fires are part of each
    # channel's base version, not of any thread's stream
    Broadcast.recorder = rec
    try:
        for proc in processes:
            proc.on_finish(_note_finish)
            proc.start()
        kernel.engine.run(max_events=max_events, stop_when=stop_when)
    finally:
        Broadcast.recorder = None
    results = [p.check() for p in processes]
    unfinished = [p.name for p in processes if not p.finished]
    if unfinished:
        raise RuntimeError(
            f"{program.name}: threads never finished: {unfinished}"
        )
    if check_invariants:
        kernel.check_invariants()
    program.verify(results)
    if rec.errors:
        raise RecordError(rec.errors[0])
    result = RunResult(
        program=program,
        kernel=kernel,
        sim_time_ns=kernel.engine.now - start,
        thread_results=results,
        report=kernel.report(),
    )
    layout["channels"] = rec.channel_layout()
    full_config = {
        "workload": getattr(program, "name", ""),
        "args": {},
        "machine": kernel.params.n_processors,
        "policy": None,
        "policy_args": {},
        "defrost": True,
        "defrost_period": None,
    }
    if config:
        full_config.update(config)
    full_config["params"] = dataclasses.asdict(kernel.params)
    expected = {
        "sim_time_ns": int(result.sim_time_ns),
        "events_executed": int(kernel.engine.events_executed),
        "n_threads": n_threads,
        "counters": run_counters(result),
    }
    bundle = TraceBundle(
        config=full_config,
        layout=layout,
        expected=expected,
        streams=rec.stream_arrays(),
    )
    return bundle, result


def record_spec(spec: dict) -> tuple[TraceBundle, RunResult]:
    """Record the run described by a bench ``{"kind": "run"}`` point spec."""
    from ..bench.targets import build_kernel_for_spec, make_program_for_spec

    if spec.get("kind", "run") != "run":
        raise RecordError(
            f"cannot record point kind {spec.get('kind')!r}; only full "
            "program runs have a reference string"
        )
    if spec.get("system", "platinum") != "platinum" or spec.get(
        "competitive"
    ):
        raise RecordError(
            "recording supports plain PLATINUM kernels only (baseline "
            "systems use ports or different executors)"
        )
    kernel = build_kernel_for_spec(spec)
    program = make_program_for_spec(spec)
    config = {
        "workload": spec.get("workload", ""),
        "args": dict(spec.get("args", {})),
        "machine": spec.get("machine", 16),
        "policy": spec.get("policy"),
        "policy_args": dict(spec.get("policy_args", {}) or {}),
        "defrost": bool(spec.get("defrost", True)),
        "defrost_period": spec.get("defrost_period"),
    }
    return record_program(kernel, program, config=config)
