"""Trace-driven replay: record a workload once, re-simulate variants.

The paper's central methodology is comparing coherence policies on the
*same* program reference behaviour.  Re-executing the full pure-Python
program logic for every policy/machine variant is wasteful: the reference
string does not change.  This package splits the two concerns:

* :mod:`repro.replay.recorder` runs a program once under full simulation
  and streams every thread's operations -- page reference runs, think
  time, migrations and the Python-level wakeup causality -- into compact
  numpy arrays;
* :mod:`repro.replay.bundle` stores the streams plus the machine/layout
  configuration and the recording run's expected results in a
  byte-stable ``repro-trace/1`` bundle;
* :mod:`repro.replay.replayer` re-simulates any policy x machine-params
  variant directly from the arrays: no generators, no frame data, the
  scalar simulation reduced to protocol events (translations, faults,
  shootdowns, freezes, defrosts) over pre-decoded access runs.

Replay under the recording configuration is *exact*: it reproduces the
live run's event ordering, protocol event counts, attribution totals and
completion time (asserted by the A/B suite in ``tests/test_replay.py``).
Replay under a variant keeps the recorded reference string fixed -- the
same approximation the paper's own cost model (and Mitosis/Phoenix-style
trace-driven policy evaluation) makes.
"""

from .bundle import (
    TRACE_SCHEMA,
    RecordError,
    ReplayError,
    TraceBundle,
    TraceError,
    load_trace,
    save_trace,
)
from .recorder import record_program, record_spec
from .replayer import ReplayResult, replay_trace

__all__ = [
    "TRACE_SCHEMA",
    "RecordError",
    "ReplayError",
    "ReplayResult",
    "TraceBundle",
    "TraceError",
    "load_trace",
    "record_program",
    "record_spec",
    "replay_trace",
    "save_trace",
]
