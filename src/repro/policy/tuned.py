"""Profiler-tuned replication: per-page verdicts from the scorer.

The PR 4 counterfactual scorer prices every page's observed reference
string under the two pure alternatives (cache vs remote_map) and emits a
verdict per page.  :class:`TunedPolicy` closes the loop: it consumes a
``{cpage index: verdict}`` table -- produced offline by ``repro tune``
from a recorded trace bundle -- and pins each listed page to its
recommended treatment, falling back to the fixed freeze/thaw policy for
every page the profiler had no opinion about.

* ``"cache"`` pages always replicate/migrate (and thaw on fault if they
  were frozen by the fallback path);
* ``"remote_map"`` pages are pinned to a single copy: the policy
  freezes them at the first opportunity so every further mapping is a
  full-rights remote mapping, and vetoes defrost thaws for them --
  exactly what the section 4.2 programmers did by hand after reading
  the per-page instrumentation, mechanized.

Verdict tables arrive as JSON (``repro-tune/1`` documents), so keys are
coerced from strings and unknown verdict strings are rejected eagerly.
"""

from __future__ import annotations

from typing import Optional

from .base import Action, FaultContext
from .fixed import TimestampFreezePolicy

#: verdicts a tuned table may pin a page to
VERDICTS = ("cache", "remote_map")


class TunedPolicy(TimestampFreezePolicy):
    """Fixed policy plus a per-page verdict table from the profiler."""

    def __init__(
        self,
        table: Optional[dict] = None,
        t1: float = 10_000_000.0,
        thaw_on_fault: bool = False,
    ) -> None:
        super().__init__(t1=t1, thaw_on_fault=thaw_on_fault)
        self.table: dict[int, str] = {}
        for key, verdict in (table or {}).items():
            verdict = str(verdict)
            if verdict == "indifferent":
                continue  # the scorer's "either way" pages stay default
            if verdict not in VERDICTS:
                raise ValueError(
                    f"page {key}: unknown verdict {verdict!r} "
                    f"(want one of {', '.join(VERDICTS)})"
                )
            self.table[int(key)] = verdict
        self.name = f"tuned({len(self.table)} pages,t1={t1 / 1e6:g}ms)"

    def decide(self, ctx: FaultContext) -> Action:
        verdict = self.table.get(ctx.cpage.index)
        if verdict is None:
            return super().decide(ctx)
        cpage, now = ctx.cpage, ctx.now
        if verdict == "cache":
            if cpage.frozen:
                # same bookkeeping as the fixed thaw-on-fault variant
                self.thaw(cpage, now)
            return Action.CACHE
        # remote_map: pin the single copy, carrying full mapping rights
        # the way frozen pages do
        if not cpage.frozen and cpage.n_copies == 1:
            self.freeze(cpage, now)
        return Action.REMOTE_MAP

    def should_thaw(self, cpage, now: int) -> bool:
        return self.table.get(cpage.index) != "remote_map"
