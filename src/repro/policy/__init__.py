"""The replication policy zoo.

Everything the kernel's fault handler and defrost daemon consult lives
behind one interface (:class:`~repro.policy.base.ReplicationPolicy`);
members are selected by registry name (:data:`~repro.policy.registry.
POLICIES`) everywhere a policy crosses a serialization boundary.  See
``docs/POLICIES.md`` for the tour and the equivalence contract.
"""

from .adaptive import AdaptiveFreezePolicy  # noqa: F401
from .base import Action, FaultContext, ReplicationPolicy  # noqa: F401
from .competitive import (  # noqa: F401
    OnlineCompetitivePolicy,
    rent_or_buy_cost,
)
from .fixed import (  # noqa: F401
    AceStylePolicy,
    AlwaysReplicatePolicy,
    NeverCachePolicy,
    TimestampFreezePolicy,
)
from .registry import POLICIES, make_policy, policy_names  # noqa: F401
from .tune import (  # noqa: F401
    TUNE_SCHEMA,
    TuneError,
    dumps_tuned,
    load_tuned,
    tune,
)
from .tuned import TunedPolicy  # noqa: F401
