"""Per-page adaptive freeze/thaw: learn ``t1``/``t2`` from the protocol.

The paper's interim policy hard-codes two constants for every page on
the machine: a 10 ms freeze window (``t1``) and a 1 s defrost period
(``t2``), and section 4.2 itself reports the anecdote that motivates
doing better -- a falsely shared page that kept being replicated,
invalidated and re-frozen around every defrost tick.

:class:`AdaptiveFreezePolicy` keeps the fixed policy's structure but
learns, per page, from the protocol history it already owns:

* through the :meth:`~repro.policy.base.ReplicationPolicy.
  note_invalidation` hook the fault handler drives, an EWMA of the
  intervals between protocol invalidations -- steady sub-threshold
  intervals mean the interference is not incidental;
* through its own :meth:`thaw` bookkeeping, *re-invalidation after a
  thaw*: an invalidation arriving within ``hot_threshold`` of the
  page's last thaw means the thaw was a mistake -- the page came out of
  the freezer, was replicated, and was promptly collapsed again, which
  is exactly the section 4.2 anecdote's defrost-period ping-pong.

A page either signal marks *hot* gets per-page thresholds:

* its freeze window widens to ``t1 * t1_hot_factor``, so after a thaw
  the next fault re-freezes it immediately instead of paying another
  replicate/invalidate round trip to rediscover the interference;
* the defrost daemon (via :meth:`should_thaw`) leaves it frozen until it
  has been frozen for ``t2_hot``, instead of thawing it every global
  ``t2`` tick just to watch it ping-pong back.

Cold pages -- invalidated rarely or never -- see exactly the fixed
policy's behaviour.  ``page_t1`` accepts explicit per-page windows (from
``repro tune``), which take precedence over the learned estimate.
"""

from __future__ import annotations

from typing import Optional

from .fixed import TimestampFreezePolicy


class AdaptiveFreezePolicy(TimestampFreezePolicy):
    """The fixed freeze/thaw policy with learned per-page thresholds.

    Parameters
    ----------
    t1:
        The base freeze window in ns (the fixed policy's constant).
    t1_hot_factor:
        Freeze-window multiplier for hot pages.
    t2_hot:
        Minimum frozen time in ns before a hot page may be thawed.
    hot_threshold:
        A page is hot once its EWMA inter-invalidation interval falls
        below this many ns, or once it is invalidated within this many
        ns of a thaw (default: ``t1`` itself -- invalidations inside
        the freeze window are the interference the window exists to
        catch).
    ewma_beta:
        Weight of the newest observed interval in the EWMA.
    page_t1:
        Explicit per-page freeze windows, ``{cpage index: ns}``; tuned
        parameter sets from ``repro tune`` land here.  JSON round trips
        deliver string keys, so keys are coerced.
    """

    def __init__(
        self,
        t1: float = 10_000_000.0,
        thaw_on_fault: bool = False,
        t1_hot_factor: float = 64.0,
        t2_hot: float = 400_000_000.0,
        hot_threshold: Optional[float] = None,
        ewma_beta: float = 0.5,
        page_t1: Optional[dict] = None,
    ) -> None:
        super().__init__(t1=t1, thaw_on_fault=thaw_on_fault)
        if t1_hot_factor < 1.0:
            raise ValueError(
                f"t1_hot_factor must be >= 1, got {t1_hot_factor!r}")
        if not 0.0 < ewma_beta <= 1.0:
            raise ValueError(
                f"ewma_beta must be in (0, 1], got {ewma_beta!r}")
        self.t1_hot_factor = float(t1_hot_factor)
        self.t2_hot = float(t2_hot)
        self.hot_threshold = float(
            hot_threshold if hot_threshold is not None else t1
        )
        self.ewma_beta = float(ewma_beta)
        self.page_t1 = {
            int(k): float(v) for k, v in (page_t1 or {}).items()
        }
        self.name = "adaptive(t1={:g}ms,x{:g},t2_hot={:g}ms)".format(
            t1 / 1e6, self.t1_hot_factor, self.t2_hot / 1e6
        )
        #: cpage index -> EWMA of inter-invalidation interval (ns)
        self._interval_ewma: dict[int, float] = {}
        #: cpage index -> engine time of the last observed invalidation
        self._last_seen: dict[int, int] = {}
        #: cpage index -> engine time of the page's last thaw
        self._last_thaw: dict[int, int] = {}
        #: pages caught re-invalidated right after a thaw
        self._hot: set[int] = set()
        #: thaws vetoed by should_thaw (diagnostics)
        self.thaws_deferred = 0

    # -- learning -------------------------------------------------------------

    def thaw(self, cpage, now: int) -> None:
        if cpage.frozen:
            self._last_thaw[cpage.index] = now
        super().thaw(cpage, now)

    def note_invalidation(self, cpage, now: int) -> None:
        idx = cpage.index
        prev = self._last_seen.get(idx)
        if prev is not None and now > prev:
            interval = float(now - prev)
            old = self._interval_ewma.get(idx)
            self._interval_ewma[idx] = (
                interval if old is None
                else (1.0 - self.ewma_beta) * old
                + self.ewma_beta * interval
            )
        self._last_seen[idx] = now
        thawed = self._last_thaw.get(idx)
        if thawed is not None and 0 <= now - thawed < self.hot_threshold:
            # the thaw bought one replicate/invalidate round trip and
            # nothing else: the interference is still there
            self._hot.add(idx)

    def interval_estimate(self, index: int) -> Optional[float]:
        """The learned EWMA inter-invalidation interval, or ``None``."""
        return self._interval_ewma.get(index)

    def is_hot(self, cpage) -> bool:
        """Hot = re-invalidated right after a thaw, or steadily
        invalidated faster than the hot threshold."""
        if cpage.index in self._hot:
            return True
        ewma = self._interval_ewma.get(cpage.index)
        return ewma is not None and ewma < self.hot_threshold

    def t1_for(self, cpage) -> float:
        """The freeze window in force for one page."""
        override = self.page_t1.get(cpage.index)
        if override is not None:
            return override
        if self.is_hot(cpage):
            return self.t1 * self.t1_hot_factor
        return self.t1

    # -- the policy interface -------------------------------------------------

    def _window_expired(self, cpage, now: int) -> bool:
        # decide() (inherited) keys every choice on this predicate, so a
        # per-page window is the whole behavioural difference on faults
        return (
            cpage.last_invalidation is None
            or now - cpage.last_invalidation >= self.t1_for(cpage)
        )

    def should_thaw(self, cpage, now: int) -> bool:
        widened = self.t1_for(cpage) > self.t1
        if not widened:
            return True
        frozen_at = cpage.frozen_at if cpage.frozen_at is not None else now
        if now - frozen_at >= self.t2_hot:
            return True
        self.thaws_deferred += 1
        return False
