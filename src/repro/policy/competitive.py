"""Online competitive replication: per-page rent-or-buy (paper section 8).

``repro.core.competitive`` implements the section 8 comparator as the
paper describes it -- a migration *daemon* sweeping simulated hardware
reference counts.  This module generalizes the same competitive argument
into a pure fault-driven member of the policy zoo, with no daemon and no
reference-counting overhead: every remote-mapped fault on a page is a
*rent* payment, and once the accumulated rent since the page's last
configuration change reaches the cost of a migration (the *buy*), the
policy caches the page on the faulting processor.

This is the classic ski-rental / rent-or-buy scheme (Black, Gupta and
Weber's competitively optimal migration): per epoch -- the interval
between configuration changes -- the online cost is at most

    ``2 * OPT + max_single_rent``

where ``OPT = min(buy, total rent)`` is the offline optimum that knows
the whole reference string in advance.  :func:`rent_or_buy_cost` is the
decision procedure factored out as a pure function so the bound is
directly property-testable (``tests/test_core_competitive.py``).

Costs are in abstract *rent units*: one read-miss remote mapping pays
``rent``, a write pays ``write_rent`` (write-shared pages should buy
later, not earlier -- migrating them ping-pongs), and ``buy`` is the
migration price in the same units.  :meth:`OnlineCompetitivePolicy.
from_params` derives the default ratio from the machine's measured
break-even point instead.
"""

from __future__ import annotations

from typing import Sequence

from .base import Action, FaultContext, ReplicationPolicy


def rent_or_buy_cost(
    rents: Sequence[float], buy: float
) -> tuple[float, float]:
    """Price one epoch of the rent-or-buy game.

    The online algorithm pays each rent charge as it arrives and buys
    (pays ``buy`` once) as soon as the accumulated rent reaches ``buy``;
    everything after the buy is free.  The offline optimum either buys
    up front or rents forever, whichever is cheaper.

    Returns ``(online_cost, offline_optimal_cost)``.  The competitive
    invariant -- ``online <= 2 * optimal + max(rents)`` -- is what the
    property suite asserts for arbitrary non-negative rent sequences.
    """
    if buy <= 0:
        raise ValueError(f"buy cost must be positive, got {buy!r}")
    total = 0.0
    online = 0.0
    bought = False
    for rent in rents:
        if rent < 0:
            raise ValueError(f"rent charges must be >= 0, got {rent!r}")
        if bought:
            break
        online += rent
        total += rent
        if total >= buy:
            online += buy
            bought = True
    optimal = min(buy, float(sum(rents)))
    return online, optimal


class OnlineCompetitivePolicy(ReplicationPolicy):
    """Per-page rent-or-buy caching decisions.

    Every policy-consulted miss on a page accrues rent; when the rent
    accumulated since the page's last epoch boundary reaches ``buy``,
    the policy answers ``CACHE`` (the faulting processor buys the page)
    and the accumulator resets.  A protocol invalidation -- some other
    processor migrated or collapsed the page -- is an epoch boundary
    too: the configuration the rent was measured against is gone.

    Pages are never frozen by this policy; bounded ping-pong *is* the
    competitive guarantee.
    """

    def __init__(
        self,
        buy: float = 8.0,
        rent: float = 1.0,
        write_rent: float = 0.5,
    ) -> None:
        super().__init__()
        if buy <= 0:
            raise ValueError(f"buy cost must be positive, got {buy!r}")
        if rent < 0 or write_rent < 0:
            raise ValueError("rent charges must be >= 0")
        self.buy = float(buy)
        self.rent = float(rent)
        self.write_rent = float(write_rent)
        self.name = f"competitive(buy={buy:g})"
        #: cpage index -> rent accumulated this epoch
        self._accrued: dict[int, float] = {}
        #: rent-or-buy epochs closed by a buy (diagnostics)
        self.buys = 0

    @classmethod
    def from_params(cls, params, words_per_fault: float = 16.0):
        """Derive the buy threshold from the machine's break-even point.

        ``break_even_words`` words of remote traffic cost as much as one
        migration; at ``words_per_fault`` remote words moved per
        remote-mapped fault, the buy price in fault-rent units is the
        break-even divided by the per-fault word estimate.
        """
        from ..core.competitive import break_even_words

        class _M:  # break_even_words wants a machine-shaped object
            pass

        machine = _M()
        machine.params = params
        buy = max(1.0, break_even_words(machine) / max(1.0, words_per_fault))
        return cls(buy=buy)

    def decide(self, ctx: FaultContext) -> Action:
        idx = ctx.cpage.index
        accrued = self._accrued.get(idx, 0.0)
        accrued += self.write_rent if ctx.write else self.rent
        if accrued >= self.buy:
            self._accrued[idx] = 0.0
            self.buys += 1
            return Action.CACHE
        self._accrued[idx] = accrued
        return Action.REMOTE_MAP

    def note_invalidation(self, cpage, now: int) -> None:
        # another processor changed the page's configuration: the rent
        # measured against the old placement no longer argues for a buy
        if cpage.index in self._accrued:
            self._accrued[cpage.index] = 0.0
