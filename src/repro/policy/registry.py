"""The policy registry: every zoo member by its CLI/bench/replay name.

One table, consumed everywhere a policy crosses a serialization
boundary: ``repro run/record/replay/gen --policy``, bench point specs,
the replayer's variant builder and ``run_spec``.  Names are stable --
they appear in committed BENCH snapshots and tuned-parameter documents.
"""

from __future__ import annotations

from typing import Callable, Optional

from .adaptive import AdaptiveFreezePolicy
from .base import ReplicationPolicy
from .competitive import OnlineCompetitivePolicy
from .fixed import (
    AceStylePolicy,
    AlwaysReplicatePolicy,
    NeverCachePolicy,
    TimestampFreezePolicy,
)
from .tuned import TunedPolicy

POLICIES: dict[str, Callable[..., ReplicationPolicy]] = {
    "freeze": TimestampFreezePolicy,
    "always": AlwaysReplicatePolicy,
    "never": NeverCachePolicy,
    "ace": AceStylePolicy,
    "competitive": OnlineCompetitivePolicy,
    "adaptive": AdaptiveFreezePolicy,
    "tuned": TunedPolicy,
}


def policy_names() -> tuple[str, ...]:
    """Registry names in stable (sorted) order, for CLI choices."""
    return tuple(sorted(POLICIES))


def make_policy(
    name: Optional[str], args: Optional[dict] = None
) -> Optional[ReplicationPolicy]:
    """Instantiate a replication policy by registry name (None -> kernel
    default)."""
    if name is None:
        return None
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}")
    try:
        return cls(**(args or {}))
    except TypeError as exc:
        raise ValueError(f"policy {name!r}: bad arguments: {exc}")
