"""Closed-loop policy tuning: replay a recording, keep what wins.

``repro tune`` closes the loop the paper leaves open in section 7
("better policies using more complete reference history"): record a run
once, then use the trace-driven replayer to *measure* -- not model --
candidate parameter sets, and emit the winner as a ``repro-tune/1``
JSON document that ``repro replay --tuned`` and ``repro gen run
--tuned`` consume directly.

Three zoo members are tunable:

* ``adaptive`` -- grid search over the hot-page knobs
  (``t1_hot_factor``, ``t2_hot``) of
  :class:`~repro.policy.adaptive.AdaptiveFreezePolicy`;
* ``competitive`` -- grid search over the rent-or-buy ``buy`` price;
* ``tuned`` -- no search at all: the PR-4 counterfactual scorer prices
  every referenced page's reference string under the two pure
  alternatives, and the resulting per-page verdict table *is* the
  parameter set (:class:`~repro.policy.tuned.TunedPolicy`).

Every trial is an exact-mode replay of the same bundle, so the reported
simulated times are bit-comparable with each other, with the recorded
baseline, and with any later ``repro replay --policy`` of the same
bundle.  Documents are rendered byte-stably (sorted keys, fixed
indentation, trailing newline) so committing one produces no spurious
diffs across re-runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

#: schema tag of tuned-parameter documents
TUNE_SCHEMA = "repro-tune/1"

#: policies `repro tune` knows how to tune
TUNABLE = ("adaptive", "competitive", "tuned")

#: default grid for ``--policy adaptive``
ADAPTIVE_CANDIDATES = (
    {"t1_hot_factor": 16.0},
    {"t1_hot_factor": 64.0},
    {"t1_hot_factor": 256.0},
    {"t1_hot_factor": 64.0, "t2_hot": 1_000_000_000.0},
)

#: default grid for ``--policy competitive``
COMPETITIVE_CANDIDATES = (
    {"buy": 2.0},
    {"buy": 8.0},
    {"buy": 32.0},
)

#: cap on scored pages for ``--policy tuned`` (heaviest first)
DEFAULT_MAX_PAGES = 64


class TuneError(Exception):
    """The tuning request is malformed or cannot be carried out."""


def _verdict_table(bundle, max_pages: int) -> dict:
    """Per-page verdicts from the counterfactual scorer, heaviest pages
    first, as a ``{cpage index: "cache" | "remote_map"}`` table."""
    from ..profile import ProfileSource, page_verdict
    from ..profile.attribution import compute_attribution
    from ..replay import replay_trace

    replay = replay_trace(bundle, trace=True, probe=True)
    source = ProfileSource.from_run(
        replay.kernel, replay, replay.probe, workload="tune"
    )
    attribution = compute_attribution(source)
    ranked = sorted(
        attribution.per_page.items(), key=lambda kv: (-kv[1]["total"], kv[0])
    )
    table = {}
    for cpage, _cats in ranked[:max_pages]:
        verdict = page_verdict(source, cpage)
        if verdict["recommended"] in ("cache", "remote_map"):
            table[cpage] = verdict["recommended"]
    return table


def tune(
    bundle,
    policy: str = "adaptive",
    candidates=None,
    max_pages: int = DEFAULT_MAX_PAGES,
) -> dict:
    """Tune ``policy`` against one recorded bundle; return the document.

    ``candidates`` overrides the default parameter grid (a sequence of
    ``policy_args`` dicts; ignored for ``tuned``, whose parameter set is
    derived, not searched).
    """
    if policy not in TUNABLE:
        raise TuneError(
            f"policy {policy!r} is not tunable "
            f"(want one of {', '.join(TUNABLE)})"
        )
    # lazy: repro.policy must stay importable from repro.core (the
    # compat shim) without dragging the replay/analysis stack in
    from ..replay import replay_trace
    from ..replay.bundle import TraceBundle, TraceError, load_trace

    try:
        if not isinstance(bundle, TraceBundle):
            bundle = load_trace(bundle)
    except (OSError, TraceError, ValueError) as exc:
        raise TuneError(str(exc))

    baseline = replay_trace(bundle)
    base_ns = baseline.sim_time_ns

    if policy == "tuned":
        table = _verdict_table(bundle, max_pages)
        if not table:
            raise TuneError(
                "the counterfactual scorer found no page it would pin: "
                "every scored page is indifferent or unknown"
            )
        candidates = [
            {"table": {str(k): v for k, v in sorted(table.items())}}
        ]
    elif candidates is None:
        candidates = (
            ADAPTIVE_CANDIDATES if policy == "adaptive"
            else COMPETITIVE_CANDIDATES
        )
    if not candidates:
        raise TuneError("no candidate parameter sets to try")

    trials = []
    for args in candidates:
        result = replay_trace(bundle, policy=policy, policy_args=dict(args))
        trials.append({
            "policy_args": dict(args),
            "sim_time_ns": result.sim_time_ns,
        })
    # earliest candidate wins ties, so the document is deterministic
    best = min(trials, key=lambda t: t["sim_time_ns"])
    improvement = 100.0 * (base_ns - best["sim_time_ns"]) / base_ns

    config = bundle.config
    return {
        "schema": TUNE_SCHEMA,
        "workload": config.get("workload", ""),
        "machine": config.get("machine"),
        "baseline": {
            "policy": config.get("policy") or "freeze",
            "policy_args": dict(config.get("policy_args") or {}),
            "sim_time_ns": base_ns,
        },
        "policy": policy,
        "policy_args": dict(best["policy_args"]),
        "sim_time_ns": best["sim_time_ns"],
        "improvement_pct": round(improvement, 4),
        "trials": trials,
    }


def dumps_tuned(doc: dict) -> str:
    """Render a tuned-parameter document byte-stably."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_tuned(path: Union[str, Path]) -> tuple[str, dict]:
    """Read a ``repro-tune/1`` document; return ``(policy, policy_args)``."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise TuneError(str(exc))
    except json.JSONDecodeError as exc:
        raise TuneError(f"{path}: not JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("schema") != TUNE_SCHEMA:
        raise TuneError(
            f"{path}: not a {TUNE_SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else '?'!r})"
        )
    policy = doc.get("policy")
    args = doc.get("policy_args")
    if policy not in TUNABLE or not isinstance(args, dict):
        raise TuneError(f"{path}: malformed tuned document")
    return policy, args
