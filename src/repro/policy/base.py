"""The replication-policy interface (paper section 4.2).

On every coherent-memory fault with no local copy, a policy module
chooses between *caching* the page locally (replication on a read miss,
migration on a write miss) and creating a *remote mapping* to an
existing copy -- effectively disabling caching for that page.

This module is the single interface every policy in the zoo implements:
:class:`ReplicationPolicy` owns the frozen-page list and exposes the
``decide`` hook the fault handler calls, plus two *observation* hooks the
kernel paths feed so online policies can learn from protocol history:

* :meth:`ReplicationPolicy.note_invalidation` -- called by the fault
  handler whenever a protocol invalidation collapses a page's copies
  (the same event that stamps ``cpage.last_invalidation``);
* :meth:`ReplicationPolicy.should_thaw` -- consulted by the defrost
  daemon before thawing each frozen page, letting a policy keep a page
  frozen past the global ``t2`` period.

Both hooks are no-ops in the base class, so the fixed policies behave
bit-identically to the pre-zoo engine (proven by the differential
policy-equivalence suite in ``tests/test_policy_equivalence.py``).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.cpage import Cpage


class Action(enum.Enum):
    """What to do about a miss with no local copy."""

    #: make a local copy (replicate on read, migrate on write)
    CACHE = "cache"
    #: map an existing copy for remote access
    REMOTE_MAP = "remote_map"


@dataclass(frozen=True)
class FaultContext:
    """Inputs to a policy decision."""

    cpage: Cpage
    processor: int
    now: int
    write: bool


class ReplicationPolicy(ABC):
    """Decides between caching and remote mapping; owns the frozen list."""

    name = "abstract"

    def __init__(self) -> None:
        self._frozen: list[Cpage] = []

    @abstractmethod
    def decide(self, ctx: FaultContext) -> Action:
        """Choose the action for a miss with no local copy."""

    # -- protocol observation hooks -------------------------------------------

    def note_invalidation(self, cpage: Cpage, now: int) -> None:
        """A protocol invalidation collapsed ``cpage``'s copies at
        ``now``.  Called by the fault handler right after it stamps
        ``cpage.last_invalidation``; adaptive policies use the interval
        stream, the base class ignores it."""

    def should_thaw(self, cpage: Cpage, now: int) -> bool:
        """May the defrost daemon thaw this frozen page now?  The base
        class always says yes -- the paper's fixed ``t2`` behaviour."""
        return True

    # -- freeze bookkeeping ---------------------------------------------------

    @property
    def frozen_pages(self) -> list[Cpage]:
        return list(self._frozen)

    def freeze(self, cpage: Cpage, now: int) -> None:
        """Freeze a page: all new mappings go to its single copy."""
        if cpage.frozen:
            return
        if cpage.n_copies != 1:
            raise ValueError(
                f"cannot freeze {cpage!r}: it has {cpage.n_copies} copies"
            )
        cpage.frozen = True
        cpage.frozen_at = now
        cpage.stats.freezes += 1
        self._frozen.append(cpage)

    def thaw(self, cpage: Cpage, now: int) -> None:
        """Un-freeze a page (defrost daemon or thaw-on-fault variant)."""
        if not cpage.frozen:
            return
        cpage.frozen = False
        cpage.frozen_at = None
        cpage.stats.thaws += 1
        self._frozen.remove(cpage)
