"""The paper's fixed policies (sections 4.2 and 8).

PLATINUM's interim policy uses a minimal history: the timestamp of the
most recent invalidation by the coherency protocol.  A fault
replicates/migrates only if that invalidation is at least ``t1`` in the
past; otherwise the page is *frozen*, and stays frozen until the defrost
daemon thaws it (period ``t2``) or -- in the alternative policy variant
-- until a fault after the window expires thaws it in place.

The family here also includes the baselines the paper discusses:
always-replicate (classic software DSM behaviour), never-cache (pure
remote access / static placement, the Uniform System style), and an
ACE-style policy after Bolosky et al. (writable pages never replicate
and migrate only a bounded number of times before freezing).
"""

from __future__ import annotations

from ..core.cpage import CpageState
from .base import Action, FaultContext, ReplicationPolicy


class TimestampFreezePolicy(ReplicationPolicy):
    """PLATINUM's interim policy (section 4.2).

    Parameters
    ----------
    t1:
        The freeze window in ns (paper default: 10 ms).
    thaw_on_fault:
        The paper's *alternative* variant: a fault arriving after the
        window has expired on a frozen page thaws it and caches.  The
        default variant keeps the page frozen until explicitly thawed by
        the defrost daemon.
    """

    def __init__(self, t1: float = 10_000_000.0, thaw_on_fault: bool = False):
        super().__init__()
        self.t1 = t1
        self.thaw_on_fault = thaw_on_fault
        self.name = (
            "freeze(t1={:g}ms{})".format(
                t1 / 1e6, ",thaw-on-fault" if thaw_on_fault else ""
            )
        )

    def _window_expired(self, cpage, now: int) -> bool:
        return (
            cpage.last_invalidation is None
            or now - cpage.last_invalidation >= self.t1
        )

    def decide(self, ctx: FaultContext) -> Action:
        cpage, now = ctx.cpage, ctx.now
        if cpage.frozen:
            if self.thaw_on_fault and self._window_expired(cpage, now):
                self.thaw(cpage, now)
                return Action.CACHE
            return Action.REMOTE_MAP
        if self._window_expired(cpage, now):
            return Action.CACHE
        # recently invalidated: interprocessor interference suspected.
        # Invalidations leave the page modified with a single copy, which
        # is exactly the precondition for freezing.
        if cpage.n_copies == 1:
            self.freeze(cpage, now)
            return Action.REMOTE_MAP
        return Action.CACHE


class AlwaysReplicatePolicy(ReplicationPolicy):
    """Cache on every miss: classic software-DSM behaviour (Li's SVM).

    Pathological under fine-grain write-sharing, which is the case the
    paper's remote-mapping extension exists to fix.
    """

    name = "always-replicate"

    def decide(self, ctx: FaultContext) -> Action:
        return Action.CACHE


class NeverCachePolicy(ReplicationPolicy):
    """Never replicate or migrate: all non-local access is remote.

    With round-robin or first-touch initial placement this reproduces the
    Uniform System / static placement programming model.
    """

    name = "never-cache"

    def decide(self, ctx: FaultContext) -> Action:
        if ctx.cpage.state is CpageState.EMPTY:
            return Action.CACHE  # first touch places the page
        return Action.REMOTE_MAP


class AceStylePolicy(ReplicationPolicy):
    """Bolosky et al.'s ACE policy (paper section 8).

    Writable pages are never replicated and may migrate only
    ``max_migrations`` times before being frozen in place; read-only (never
    yet written) pages replicate freely.
    """

    def __init__(self, max_migrations: int = 2):
        super().__init__()
        self.max_migrations = max_migrations
        self.name = f"ace(max_migrations={max_migrations})"

    def decide(self, ctx: FaultContext) -> Action:
        cpage = ctx.cpage
        if cpage.frozen:
            return Action.REMOTE_MAP
        if ctx.write or cpage.stats.write_faults > 0:
            if cpage.stats.migrations >= self.max_migrations:
                if cpage.n_copies == 1:
                    self.freeze(cpage, ctx.now)
                return Action.REMOTE_MAP
            if ctx.write:
                return Action.CACHE
            # read miss on a page that has been written: never replicate
            return Action.REMOTE_MAP
        return Action.CACHE
