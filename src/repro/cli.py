"""Command-line interface: run PLATINUM experiments from a shell.

::

    python -m repro table1                 # the section 4.1 table
    python -m repro transitions            # the Figure 4 diagram
    python -m repro micro                  # section 4 microbenchmarks
    python -m repro gauss -n 128 -p 8      # one Gauss run + post-mortem
    python -m repro speedup gauss -n 200   # a Figure 1-style curve
    python -m repro speedup mergesort
    python -m repro speedup neural
    python -m repro compare -n 400         # the section 5.1 three systems
    python -m repro trace -n 48 -p 4       # a traced run's protocol log
    python -m repro bench --quick --jobs 4 # the parallel benchmark sweep
    python -m repro check invariants       # invariant-checked workloads
    python -m repro check conformance      # trace replay vs Figure 4
    python -m repro check fuzz --seeds 100 # seeded schedule fuzzing

All output is plain text on stdout; every command is deterministic.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import (
    MigrationCostModel,
    ascii_plot,
    format_table,
    measure_speedup,
)
from .baselines import (
    SMPGauss,
    UniformSystemGauss,
    smp_kernel,
    uniform_system_kernel,
)
from .core import format_table as format_transitions
from .policy.registry import policy_names
from .runtime import make_kernel, run_program
from .workloads import (
    GaussianElimination,
    JacobiSOR,
    MatrixMultiply,
    MergeSort,
    NeuralNetSimulator,
)


def _cmd_table1(args: argparse.Namespace) -> int:
    model = (
        MigrationCostModel.paper_constants()
        if args.paper_constants
        else MigrationCostModel.from_params(
            make_kernel(n_processors=2).params
        )
    )
    print(model.format_table1())
    return 0


def _cmd_transitions(args: argparse.Namespace) -> int:
    print(format_transitions())
    return 0


def _cmd_micro(args: argparse.Namespace) -> int:
    from .analysis import compare_to_paper
    from .workloads import (
        measure_page_copy,
        measure_read_miss_clean,
        measure_read_miss_modified,
        measure_shootdown_increment,
        measure_write_miss_present_plus,
    )

    ms = 1e6
    print("section 4 microbenchmarks (paper range vs measured)")
    print(compare_to_paper("block transfer, one 4KB page",
                           measure_page_copy() / ms, 1.11, unit=" ms"))
    print(compare_to_paper("read miss, replicate non-modified",
                           measure_read_miss_clean(True) / ms,
                           1.34, 1.38, unit=" ms"))
    print(compare_to_paper("read miss, replicate modified",
                           measure_read_miss_modified(True) / ms,
                           1.38, 1.59, unit=" ms"))
    print(compare_to_paper("write miss on present+",
                           measure_write_miss_present_plus() / ms,
                           0.25, 0.45, unit=" ms"))
    costs = measure_shootdown_increment(8)
    inc = max(b - a for a, b in zip(costs, costs[1:])) / 1e3
    print(compare_to_paper("incremental cost per extra cpu", inc,
                           0.0, 17.0, unit=" us"))
    return 0


def _make_program(name: str, args: argparse.Namespace, p: int):
    if name == "gauss":
        return GaussianElimination(
            n=args.n, n_threads=p, verify_result=args.verify
        )
    if name == "mergesort":
        return MergeSort(n=args.n, n_threads=p,
                         verify_result=args.verify)
    if name == "neural":
        return NeuralNetSimulator(epochs=args.epochs, n_threads=p)
    if name == "jacobi":
        return JacobiSOR(n=args.n, iterations=args.epochs, n_threads=p,
                         verify_result=args.verify)
    if name == "matmul":
        return MatrixMultiply(n=args.n, n_threads=p,
                              verify_result=args.verify)
    raise ValueError(f"unknown workload {name!r}")


def _attach_trace_sink(kernel, destination: str):
    """Stream trace events to ``destination`` (extension picks the
    format: ``.jsonl`` -> JSON Lines, anything else -> Chrome
    trace-event JSON for Perfetto/chrome://tracing)."""
    from .telemetry import ChromeTraceSink, JsonlTraceSink

    if destination.endswith(".jsonl"):
        sink = JsonlTraceSink(destination)
    else:
        sink = ChromeTraceSink(
            destination, n_processors=kernel.params.n_processors
        )
    kernel.tracer.add_sink(sink)
    return sink


def _start_sampler(kernel, sample_ms: float):
    from .telemetry import SimTimeSampler

    sampler = SimTimeSampler(
        kernel, period_ms=sample_ms, registry=kernel.metrics
    )
    sampler.start()
    return sampler


def _write_metrics_jsonl(kernel, sampler, destination: str) -> int:
    """Write metric records then sampler records as one JSONL file;
    returns how many lines were written."""
    from pathlib import Path

    path = Path(destination)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    text = kernel.metrics.to_jsonl() + sampler.to_jsonl()
    path.write_text(text)
    return text.count("\n")


def _parse_policy_args(raw, verb: str):
    """``--policy-args`` JSON -> dict, or the exit-2 sentinel string."""
    import json

    if not raw:
        return None
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"repro {verb}: --policy-args is not JSON: {exc}")
        return _POLICY_ARGS_ERROR


_POLICY_ARGS_ERROR = object()


def _note_history_run(workload: str, args: argparse.Namespace,
                      result) -> None:
    """Drop one simulated run's facts into the ambient history
    recorder (no-op when ``--history`` is off)."""
    from .obs import get_recorder

    recorder = get_recorder()
    if recorder is None:
        return
    from .analysis.costmodel import run_counters

    recorder.note(workload=workload, machine=args.machine, p=args.p)
    recorder.note_sim(**run_counters(result))


def _cmd_run(args: argparse.Namespace) -> int:
    want_metrics = args.metrics_out is not None
    if want_metrics and args.sample_ms <= 0:
        print(f"repro {args.workload}: --sample-ms must be positive, "
              f"got {args.sample_ms}")
        return 2
    policy = None
    if args.policy:
        policy_args = _parse_policy_args(args.policy_args, args.workload)
        if policy_args is _POLICY_ARGS_ERROR:
            return 2
        from .policy import make_policy

        try:
            policy = make_policy(args.policy, policy_args)
        except ValueError as exc:
            print(f"repro {args.workload}: {exc}")
            return 2
    kernel = make_kernel(
        n_processors=args.machine, trace=args.trace,
        metrics=want_metrics, policy=policy,
    )
    if args.trace_out:
        _attach_trace_sink(kernel, args.trace_out)
        # without --trace the history lives only on disk: constant memory
        kernel.tracer.retain = args.trace
    sampler = _start_sampler(kernel, args.sample_ms) if want_metrics \
        else None
    program = _make_program(args.workload, args, args.p)
    try:
        from .obs import span as obs_span

        with obs_span("run.simulate", workload=args.workload,
                      machine=args.machine, p=args.p) as sp:
            result = run_program(kernel, program)
            sp.attrs["sim_time_ms"] = round(result.sim_time_ms, 6)
    finally:
        # a crashing run must still flush its trace sinks: a valid,
        # truncated trace beats a silently-buffered empty one
        kernel.tracer.close_sinks()
    _note_history_run(args.workload, args, result)
    print(f"{program.name}: {result.sim_time_ms:.2f} ms simulated "
          f"on {args.p} of {args.machine} processors")
    print()
    print(result.report.format(max_rows=args.rows))
    if args.trace:
        print()
        print(kernel.tracer.timeline(limit=args.rows * 2))
    if args.trace_out:
        print(f"\nwrote trace to {args.trace_out}")
    if sampler is not None:
        lines = _write_metrics_jsonl(kernel, sampler, args.metrics_out)
        print(f"wrote {lines} metric/sample records to "
              f"{args.metrics_out}")
        if sampler.dropped:
            print(f"warning: sampler dropped {sampler.dropped} samples "
                  "at the cap")
    return 0


def _metrics_from_file(destination: str, fmt: str = "text") -> int:
    """Summarize a previously written metrics JSONL file."""
    import json
    from pathlib import Path

    path = Path(destination)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"repro metrics: cannot read {path}: "
              f"{exc.strerror or exc}")
        return 2
    metrics: list[dict] = []
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"repro metrics: {path}:{lineno}: not JSON "
                  f"({exc.msg})")
            return 2
        kind = record.get("record") if isinstance(record, dict) else None
        if kind == "metric":
            metrics.append(record)
        elif kind == "sample":
            samples += 1
        else:
            print(f"repro metrics: {path}:{lineno}: not a "
                  "metric/sample record; is this a metrics JSONL file "
                  "from --metrics-out or repro metrics --out?")
            return 2
    if not metrics and not samples:
        print(f"repro metrics: {path}: no metric or sample records")
        return 2
    if fmt == "prom":
        from .telemetry import records_to_prometheus

        sys.stdout.write(records_to_prometheus(metrics))
        return 0
    print(f"{path}: {len(metrics)} metric record(s), "
          f"{samples} sample record(s)")
    for record in metrics:
        labels = record.get("labels") or {}
        suffix = (
            "{" + ",".join(f"{k}={v}"
                           for k, v in sorted(labels.items())) + "}"
            if labels else ""
        )
        print(f"  {record.get('name')}{suffix} = {record.get('value')}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.from_file is not None:
        return _metrics_from_file(args.from_file, args.format)
    if args.workload is None:
        print("repro metrics: give a workload to run, or --from FILE "
              "to summarize a saved metrics file")
        return 2
    if args.sample_ms <= 0:
        print(f"repro metrics: --sample-ms must be positive, "
              f"got {args.sample_ms}")
        return 2
    kernel = make_kernel(n_processors=args.machine, metrics=True)
    sampler = _start_sampler(kernel, args.sample_ms)
    program = _make_program(args.workload, args, args.p)
    result = run_program(kernel, program)
    _note_history_run(args.workload, args, result)
    if args.format == "prom":
        # stdout is the exposition document; human context to stderr
        print(f"{program.name}: {result.sim_time_ms:.2f} ms simulated "
              f"on {args.p} of {args.machine} processors",
              file=sys.stderr)
        from .telemetry import to_prometheus

        sys.stdout.write(to_prometheus(kernel.metrics))
        if args.out:
            lines = _write_metrics_jsonl(kernel, sampler, args.out)
            print(f"wrote {lines} metric/sample records to {args.out}",
                  file=sys.stderr)
        return 0
    print(f"{program.name}: {result.sim_time_ms:.2f} ms simulated "
          f"on {args.p} of {args.machine} processors")
    print()
    print(kernel.metrics.format())
    print()
    from .analysis import sample_timeline

    print(sample_timeline(sampler))
    if args.out:
        lines = _write_metrics_jsonl(kernel, sampler, args.out)
        print(f"\nwrote {lines} metric/sample records to {args.out}")
    return 0


#: workloads `repro explain` can run live
_EXPLAIN_WORKLOADS = ("gauss", "mergesort", "neural", "jacobi", "matmul")

#: default problem sizes for live `repro explain` runs
_EXPLAIN_DEFAULT_N = {
    "gauss": 64, "mergesort": 16384, "neural": 40,
    "jacobi": 48, "matmul": 48,
}


def _explain_run(args: argparse.Namespace, target: str):
    """Run a workload live with the tracer and access probe on, and
    return its :class:`~repro.profile.ProfileSource`.

    ``sec42`` is the paper's section 4.2 anecdote: Gauss with the
    column-size word sharing a page with the column lock, and a short
    defrost period so freeze/thaw shows up in a small run.
    """
    from .profile import AccessProbe, ProfileSource

    kernel = make_kernel(
        n_processors=args.machine,
        trace=True,
        defrost_period=20e6 if target == "sec42" else None,
    )
    probe = AccessProbe.install(kernel.coherent)
    if target == "sec42":
        program = GaussianElimination(
            n=args.n if args.n is not None else 24,
            n_threads=args.p,
            verify_result=False,
            colocate_lock_with_size=True,
        )
    else:
        if args.n is None:
            args.n = _EXPLAIN_DEFAULT_N[target]
        program = _make_program(target, args, args.p)
    result = run_program(kernel, program)
    return ProfileSource.from_run(kernel, result, probe,
                                  workload=target)


def _is_workload_spec(target: str) -> bool:
    """True when ``target`` is a ``repro-workload/1`` spec file."""
    import json
    from pathlib import Path

    path = Path(target)
    if not (path.is_file() and path.suffix == ".json"):
        return False
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(doc, dict) and doc.get("schema") == "repro-workload/1"


def _explain_spec(target: str):
    """Run a generated workload spec live under the profiler.

    The machine size and thread count come from the spec itself; a
    short defrost period makes freeze/thaw visible in small runs, as in
    the ``sec42`` target.
    """
    from .profile import AccessProbe, ProfileSource
    from .workloads import GeneratedWorkload, WorkloadSpec

    spec = WorkloadSpec.load(target)
    kernel = make_kernel(
        n_processors=spec.machine, trace=True, defrost_period=20e6
    )
    probe = AccessProbe.install(kernel.coherent)
    result = run_program(kernel, GeneratedWorkload(spec))
    return ProfileSource.from_run(kernel, result, probe,
                                  workload=spec.name)


def _cmd_explain(args: argparse.Namespace) -> int:
    from .profile import ProfileError, ProfileSource, build_explain
    from .workloads import SpecError

    target = args.target
    try:
        if target in _EXPLAIN_WORKLOADS or target == "sec42":
            source = _explain_run(args, target)
        elif _is_workload_spec(target):
            source = _explain_spec(target)
        else:
            source = ProfileSource.load(target)
    except (ProfileError, SpecError) as exc:
        print(f"repro explain: {exc}")
        return 2
    if args.save:
        path = source.save(args.save)
        # stderr so --format json stdout stays a clean document
        print(f"wrote profile bundle to {path}", file=sys.stderr)
    report = build_explain(
        source,
        top=args.top,
        page=args.page,
        critical_path=args.critical_path,
    )
    if args.format == "json":
        sys.stdout.write(report.to_json())
    else:
        sys.stdout.write(report.format_text())
    return 0


def _is_events_ledger(target: str) -> bool:
    """True when ``target`` is a ``repro-events/1`` ledger file."""
    import json
    from pathlib import Path

    path = Path(target)
    if not path.is_file():
        return False
    try:
        with open(path) as handle:
            first = handle.readline()
        record = json.loads(first)
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(record, dict) \
        and record.get("record") == "meta" \
        and record.get("schema") == "repro-events/1"


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Run the anomaly-detector catalog over a run (see obs.doctor)."""
    import json

    from .obs import DoctorError, LedgerError, diagnose, render_findings
    from .obs.doctor import validate_detectors
    from .profile import ProfileError, ProfileSource
    from .workloads import SpecError

    detectors = args.detector or None
    try:
        if detectors is not None:
            # reject an unknown detector *before* the expensive run
            validate_detectors(detectors)
        target = args.target
        source = None
        ledger_records = None
        if target in _EXPLAIN_WORKLOADS or target == "sec42":
            source = _explain_run(args, target)
        elif _is_workload_spec(target):
            source = _explain_spec(target)
        elif _is_events_ledger(target):
            from .obs import read_ledger

            ledger_records = read_ledger(target)
            if detectors is None:
                detectors = ["pool_wall"]
        else:
            source = ProfileSource.load(target)
        report = diagnose(
            source,
            ledger_records=ledger_records,
            detectors=detectors,
        )
    except (DoctorError, ProfileError, SpecError, LedgerError) as exc:
        print(f"repro doctor: {exc}")
        return 2
    except OSError as exc:
        print(f"repro doctor: cannot read {args.target}: "
              f"{exc.strerror or exc}")
        return 2
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote findings to {args.out}", file=sys.stderr)
    if args.format == "json":
        sys.stdout.write(text)
    else:
        print(render_findings(report))
    return 0


def _version() -> str:
    """The installed distribution version, falling back to the package
    constant when running from a source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # noqa: BLE001 - metadata absent outside installs
        from . import __version__

        return __version__


def _record_spec_args(args: argparse.Namespace) -> dict:
    """Workload constructor args for a record spec (mirrors
    ``_make_program``, but as a picklable spec dict)."""
    name = args.workload
    if name == "neural":
        return {"epochs": args.epochs, "n_threads": args.p}
    spec_args = {"n": args.n, "n_threads": args.p,
                 "verify_result": args.verify}
    if name == "jacobi":
        spec_args["iterations"] = args.epochs
    return spec_args


def _cmd_record(args: argparse.Namespace) -> int:
    import json

    from .replay import TraceError, record_spec, save_trace

    spec = {
        "kind": "run",
        "workload": args.workload,
        "machine": args.machine,
        "args": _record_spec_args(args),
    }
    if args.policy:
        spec["policy"] = args.policy
        if args.policy_args:
            try:
                spec["policy_args"] = json.loads(args.policy_args)
            except json.JSONDecodeError as exc:
                print(f"repro record: --policy-args is not JSON: {exc}")
                return 2
    if not args.defrost:
        spec["defrost"] = False
    if args.defrost_period_ms is not None:
        spec["defrost_period"] = args.defrost_period_ms * 1e6
    from .obs import span as obs_span

    try:
        with obs_span("record.simulate", workload=args.workload,
                      machine=args.machine) as sp:
            bundle, result = record_spec(spec)
            sp.attrs["ops"] = bundle.n_ops
            sp.attrs["sim_time_ms"] = round(result.sim_time_ms, 6)
    except (TraceError, ValueError) as exc:
        print(f"repro record: {exc}")
        return 2
    with obs_span("record.save"):
        path = save_trace(bundle, args.out or f"{args.workload}.trace")
    print(f"{args.workload}: {result.sim_time_ms:.2f} ms simulated on "
          f"{args.p} of {args.machine} processors")
    print(f"recorded {bundle.n_ops} ops on {bundle.n_threads} threads")
    print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from .replay import TraceError, replay_trace

    params = {}
    for kv in args.param:
        key, sep, value = kv.partition("=")
        if not sep:
            print(f"repro replay: --param wants KEY=VALUE, got {kv!r}")
            return 2
        try:
            params[key] = float(value)
        except ValueError:
            print(f"repro replay: --param {key}: {value!r} is not a "
                  "number")
            return 2
    policy = args.policy
    policy_args = None
    if args.policy_args:
        try:
            policy_args = json.loads(args.policy_args)
        except json.JSONDecodeError as exc:
            print(f"repro replay: --policy-args is not JSON: {exc}")
            return 2
    if args.tuned:
        from .policy import TuneError, load_tuned

        try:
            policy, policy_args = load_tuned(args.tuned)
        except TuneError as exc:
            print(f"repro replay: {exc}")
            return 2
    if args.fast and args.check:
        print("repro replay: --fast is approximate; --check needs "
              "exact mode")
        return 2
    from .obs import span as obs_span

    try:
        with obs_span("replay.run", trace=args.trace,
                      mode="fast" if args.fast else "exact",
                      policy=policy) as sp:
            result = replay_trace(
                args.trace,
                policy=policy,
                policy_args=policy_args,
                defrost=args.defrost,
                defrost_period=(
                    args.defrost_period_ms * 1e6
                    if args.defrost_period_ms is not None else None
                ),
                params=params or None,
                check_expected=args.check,
                mode="fast" if args.fast else "exact",
            )
            sp.attrs["events_executed"] = result.events_executed
            sp.attrs["sim_time_ms"] = round(result.sim_time_ms, 6)
    except TraceError as exc:
        print(f"repro replay: {exc}")
        return 2
    print(f"replay: {result.sim_time_ms:.2f} ms simulated, "
          f"{result.events_executed} events executed")
    if args.fast:
        print(f"fast mode: {result.batched_ops} ops batched into "
              f"{result.windows} windows")
    if args.check:
        print("replay reproduces the recording run exactly")
    print()
    print(result.report.format(max_rows=args.rows))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .policy import TuneError, dumps_tuned, tune
    from .replay import TraceError

    from .obs import span as obs_span

    try:
        with obs_span("tune.run", trace=args.trace,
                      policy=args.policy) as sp:
            doc = tune(args.trace, policy=args.policy,
                       max_pages=args.max_pages)
            sp.attrs["trials"] = len(doc["trials"])
            sp.attrs["improvement_pct"] = doc["improvement_pct"]
    except (TuneError, TraceError) as exc:
        print(f"repro tune: {exc}")
        return 2
    text = dumps_tuned(doc)
    if args.out and args.out != "-":
        path = Path(args.out)
        path.write_text(text)
        base = doc["baseline"]
        print(f"baseline {base['policy']}: "
              f"{base['sim_time_ns'] / 1e6:.3f} ms")
        print(f"tuned {doc['policy']}: "
              f"{doc['sim_time_ns'] / 1e6:.3f} ms "
              f"({doc['improvement_pct']:+.2f}% vs baseline, "
              f"{len(doc['trials'])} trial(s))")
        print(f"wrote {path}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from .analysis import run_dashboard

    kernel = make_kernel(n_processors=args.machine, trace=True)
    # long runs: keep the newest events rather than silently truncating
    # the interesting tail (keep-first mode drops everything after the
    # cap, which starved the dashboard's late-run panels)
    kernel.tracer.use_ring()
    program = _make_program(args.workload, args, args.p)
    run_program(kernel, program)
    print(run_dashboard(kernel))
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    counts = [int(c) for c in args.counts.split(",")]
    curve = measure_speedup(
        lambda p: _make_program(args.workload, args, p),
        processor_counts=counts,
        machine_processors=args.machine,
        label=f"{args.workload}",
    )
    print(curve.format())
    print()
    print(ascii_plot(
        curve.processors,
        {"measured": curve.speedups,
         "ideal": [float(p) for p in curve.processors]},
        title=f"{args.workload} speedup vs processors",
        y_label="speedup",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    systems = {
        "PLATINUM": (
            lambda: make_kernel(n_processors=args.machine),
            lambda p: GaussianElimination(n=args.n, n_threads=p,
                                          verify_result=False),
        ),
        "Uniform System": (
            lambda: uniform_system_kernel(args.machine),
            lambda p: UniformSystemGauss(n=args.n, n_threads=p,
                                         verify_result=False),
        ),
        "SMP": (
            lambda: smp_kernel(args.machine),
            lambda p: SMPGauss(n=args.n, n_threads=p,
                               verify_result=False),
        ),
    }
    rows = []
    for name, (kf, pf) in systems.items():
        times = {}
        for p in (1, args.machine):
            times[p] = run_program(kf(), pf(p)).sim_time_ns
        rows.append([
            name,
            f"{times[1] / times[args.machine]:.2f}",
            f"{times[1] / 1e9:.2f}",
            f"{times[args.machine] / 1e9:.3f}",
        ])
    print(format_table(
        ["system", f"speedup@{args.machine}", "T1 (s)",
         f"T{args.machine} (s)"],
        rows,
        title=f"Gauss {args.n}x{args.n} by programming system "
        "(paper section 5.1)",
    ))
    return 0


def _check_workloads(machine: int):
    """The small workload battery the check commands run: every
    protocol behaviour class (replication, migration, freeze, defrost
    thaw, thaw-on-fault) in a few hundred milliseconds of wall time."""
    from .core.policy import TimestampFreezePolicy
    from .workloads import PhaseChangeSharing, RoundRobinSharing

    return [
        (
            "round-robin-sharing",
            lambda: make_kernel(n_processors=machine, trace=True),
            lambda: RoundRobinSharing(n_threads=4, operations=16),
        ),
        (
            "phase-change-sharing",
            lambda: make_kernel(
                n_processors=machine, trace=True, defrost_period=30e6
            ),
            lambda: PhaseChangeSharing(n_threads=4),
        ),
        (
            "gauss-16",
            lambda: make_kernel(n_processors=machine, trace=True),
            lambda: GaussianElimination(n=16, n_threads=4),
        ),
        (
            "gauss-16-thaw-on-fault",
            lambda: make_kernel(
                n_processors=machine,
                trace=True,
                policy=TimestampFreezePolicy(thaw_on_fault=True),
            ),
            lambda: GaussianElimination(n=16, n_threads=4),
        ),
        (
            "mergesort-256",
            lambda: make_kernel(n_processors=machine, trace=True),
            lambda: MergeSort(n=256, n_threads=4),
        ),
    ]


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import run_bench, summarize, write_results

    if args.update:
        # the one-verb snapshot-regeneration path: the committed
        # BENCH_smoke.json is always the smoke scale of every target
        if args.quick or args.full \
                or (args.scale and args.scale != "smoke"):
            print("repro bench: --update regenerates the committed "
                  "smoke snapshot; drop --quick/--full/--scale")
            return 2
        if args.filter:
            print("repro bench: --update writes the all-target "
                  "snapshot; drop --filter")
            return 2
        args.smoke = True
        if not args.snapshot:
            args.snapshot = "BENCH_smoke.json"
    scale = args.scale or (
        "full" if args.full else ("smoke" if args.smoke else "quick")
    )

    def progress(result):
        status = "ok" if result.ok else (
            "TIMEOUT" if result.timed_out else "FAILED"
        )
        print(f"  {result.name:<44} {status:>7} {result.wall_s:8.2f}s",
              flush=True)

    import time as _time

    t0 = _time.perf_counter()
    try:
        docs, runner = run_bench(
            scale=scale,
            jobs=args.jobs,
            filter_pattern=args.filter,
            base_seed=args.base_seed,
            timeout_s=args.timeout,
            progress=progress if not args.quiet else None,
            profile_wall=args.profile_wall,
        )
    except ValueError as exc:
        print(f"repro bench: {exc}")
        return 2
    wall = _time.perf_counter() - t0
    from .obs import get_recorder

    recorder = get_recorder()
    if recorder is not None:
        recorder.note(scale=scale, seed=args.base_seed,
                      targets=sorted(docs))
        recorder.note_wall(jobs=args.jobs, sweep_s=round(wall, 6))
        for name, doc in sorted(docs.items()):
            recorder.note_bench(name, doc)
    out_dir = Path(args.out)
    written = write_results(docs, out_dir)
    if args.snapshot:
        from .bench import write_snapshot

        written.append(write_snapshot(docs, scale, args.snapshot))
    total, failed, problems = summarize(docs)
    print()
    print(f"bench {scale}: {len(docs)} target(s), {total} point(s), "
          f"{failed} failed, {wall:.1f}s wall "
          f"(jobs={args.jobs}"
          + (", degraded to serial" if runner.degraded else "") + ")")
    health = getattr(runner, "health", None)
    if health is not None:
        notable = {k: v for k, v in health.summary().items()
                   if k != "tasks" and v}
        if notable:
            print("pool health: " + ", ".join(
                f"{k}={v}" for k, v in sorted(notable.items())))
    for path in written:
        if path.suffix == ".json":
            print(f"  wrote {path}")
    if args.profile_wall:
        from .obs import format_wall_profile

        for name, doc in sorted(docs.items()):
            profiles = doc.get("wall_profile")
            if not profiles:
                continue
            print()
            for pname, table in profiles["points"].items():
                print(format_wall_profile(f"{name}::{pname}", table))
    if problems:
        print("\nschema problems:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    if args.compare:
        from .obs import TrendError, compare_targets, load_perf_doc, \
            render_trend

        try:
            baseline = load_perf_doc(args.compare)
            verdict = compare_targets(
                baseline,
                {"source": "<this run>", "scale": scale,
                 "targets": docs},
            )
        except TrendError as exc:
            print(f"repro bench: --compare: {exc}")
            return 2
        print()
        print(render_trend(verdict))
        if not verdict["ok"]:
            return 1
    return 1 if failed else 0


def _cmd_obs_trend(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import (
        DEFAULT_MIN_WALL_S,
        DEFAULT_WALL_TOLERANCE,
        HistoryError,
        TrendError,
        history_root,
        load_history,
        render_trend,
        trend_history,
        trend_series,
    )

    tolerance = args.wall_tolerance if args.wall_tolerance is not None \
        else DEFAULT_WALL_TOLERANCE
    min_wall = args.min_wall_s if args.min_wall_s is not None \
        else DEFAULT_MIN_WALL_S
    try:
        if args.history_n is not None:
            if args.files:
                print("repro obs trend: give bench files or "
                      "--history N, not both")
                return 2
            summaries = load_history(
                history_root(args.history_dir), last=args.history_n)
            doc = trend_history(
                summaries,
                wall_tolerance=tolerance,
                min_wall_s=min_wall,
            )
        else:
            doc = trend_series(
                args.files,
                wall_tolerance=tolerance,
                min_wall_s=min_wall,
            )
    except (TrendError, HistoryError) as exc:
        print(f"repro obs trend: {exc}")
        return 2
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text)
    if args.format == "json":
        sys.stdout.write(text)
    else:
        print(render_trend(doc))
    return 0 if doc["ok"] else 1


def _cmd_obs_ledger(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        LedgerError,
        read_ledger,
        strip_wall_ledger,
        summarize_ledger,
        validate_ledger,
    )

    if args.follow:
        from .obs import follow_ledger, render_follow_record

        try:
            for record in follow_ledger(
                args.path, poll_s=args.poll_s, timeout_s=args.timeout,
            ):
                line = render_follow_record(record)
                if line:
                    print(line, flush=True)
        except LedgerError as exc:
            print(f"repro obs ledger: {exc}")
            return 2
        except KeyboardInterrupt:
            return 130
        return 0
    try:
        records = read_ledger(args.path)
    except OSError as exc:
        print(f"repro obs ledger: cannot read {args.path}: "
              f"{exc.strerror or exc}")
        return 2
    except LedgerError as exc:
        print(f"repro obs ledger: {exc}")
        return 2
    problems = validate_ledger(records)
    if args.strip_wall:
        # the rerun-comparable view: wall-clock fields dropped, spans in
        # sid order -- byte-identical across runs of the same command
        for record in strip_wall_ledger(records):
            sys.stdout.write(json.dumps(
                record, sort_keys=True, separators=(",", ":")) + "\n")
    else:
        print(summarize_ledger(records))
    if problems:
        print(f"\n{len(problems)} ledger problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    return 0


def _cmd_obs_history_list(args: argparse.Namespace) -> int:
    from .obs import HistoryError, history_root, load_history
    from .obs.history import summary_line

    root = history_root(args.history_dir)
    try:
        summaries = load_history(root, last=args.last)
    except HistoryError as exc:
        print(f"repro obs history: {exc}")
        return 2
    if not summaries:
        print(f"repro obs history: {root} is empty")
        return 2
    print(f"{root}: {len(summaries)} run(s)")
    for summary in summaries:
        print(f"  {summary_line(summary)}")
    return 0


def _cmd_obs_history_show(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        HistoryError,
        history_root,
        list_runs,
        load_summary,
        strip_wall_summary,
    )

    root = history_root(args.history_dir)
    try:
        run = args.run
        if run is None:
            runs = list_runs(root)
            if not runs:
                print(f"repro obs history: {root} is empty")
                return 2
            run = runs[-1]
        summary = load_summary(root, run)
    except HistoryError as exc:
        print(f"repro obs history: {exc}")
        return 2
    if args.strip_wall:
        # the rerun-comparable view, one compact line -- byte-identical
        # across same-args same-seed runs (the round-trip CI check)
        sys.stdout.write(json.dumps(
            strip_wall_summary(summary), sort_keys=True,
            separators=(",", ":")) + "\n")
    else:
        sys.stdout.write(json.dumps(
            summary, indent=2, sort_keys=True) + "\n")
    return 0


def _cmd_obs_history_trend(args: argparse.Namespace) -> int:
    # delegate to `repro obs trend --history N` (0 = every run)
    args.history_n = args.last if args.last is not None else 0
    args.files = []
    return _cmd_obs_trend(args)


def _cmd_check_invariants(args: argparse.Namespace) -> int:
    from .check import InvariantViolation, install_invariant_checker

    failed = 0
    for name, make_k, make_p in _check_workloads(args.machine):
        kernel = make_k()
        checker = install_invariant_checker(kernel.coherent)
        try:
            run_program(kernel, make_p())
        except InvariantViolation as exc:
            failed += 1
            print(f"{name}: FAILED after {checker.checks} sweeps -- {exc}")
        else:
            print(
                f"{name}: ok -- {checker.checks} invariant sweeps, "
                "0 violations"
            )
    if failed:
        print(f"\n{failed} workload(s) violated the coherence invariants")
        return 1
    print("\nall workloads hold the coherence invariants")
    return 0


def _cmd_check_conformance(args: argparse.Namespace) -> int:
    from .check import check_trace

    failed = 0
    for name, make_k, make_p in _check_workloads(args.machine):
        kernel = make_k()
        run_program(kernel, make_p())
        report = check_trace(kernel.tracer)
        print(f"{name}: {report.describe()}")
        if not report.ok:
            failed += 1
    if failed:
        print(f"\n{failed} trace(s) diverged from the Figure 4 table")
        return 1
    print("\nall traces conform to the Figure 4 transition table")
    return 0


def _cmd_check_fuzz(args: argparse.Namespace) -> int:
    from .check import fuzz

    for name in ("seeds", "ops", "procs", "pages"):
        if getattr(args, name) < 1:
            print(f"repro check fuzz: --{name} must be at least 1")
            return 2

    def progress(seed, outcome):
        if args.verbose:
            status = "ok" if outcome.ok else "FAILED"
            print(
                f"seed {seed}: {status} ({outcome.ops_run} ops, "
                f"{outcome.checks} sweeps)"
            )

    if args.corpus:
        from .check import fuzz_corpus
        from .workloads import SpecError, WorkloadSpec
        from .workloads.generate import corpus_paths

        try:
            specs = [WorkloadSpec.load(p)
                     for p in corpus_paths(args.corpus)]
        except SpecError as exc:
            print(f"repro check fuzz: {exc}")
            return 2
        if not specs:
            print(f"repro check fuzz: no spec files in {args.corpus}")
            return 2
        try:
            report = fuzz_corpus(
                specs,
                policies=tuple(args.policies.split(",")),
                shrink=args.shrink,
                progress=progress,
            )
        except ValueError as exc:
            print(f"repro check fuzz: {exc}")
            return 2
        print(report.describe())
        return 0 if report.ok else 1

    report = fuzz(
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        n_ops=args.ops,
        n_processors=args.procs,
        n_pages=args.pages,
        shrink=args.shrink,
        progress=progress,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    """Dispatcher for the ``repro gen`` sub-subcommands; every spec
    problem surfaces as a one-line exit-2 error, matching ``repro
    explain``."""
    try:
        return args.gen_fn(args)
    except ValueError as exc:  # SpecError and policy-name errors
        print(f"repro gen: {exc}")
        return 2


def _cmd_gen_emit(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .workloads import SpecError, generate_spec

    if args.count < 1:
        raise SpecError("-n must be at least 1")
    specs = [generate_spec(args.seed + i, args.profile)
             for i in range(args.count)]
    if args.out == "-":
        for spec in specs:
            sys.stdout.write(spec.to_json())
        return 0
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        path = spec.save(outdir / f"{spec.name}.json")
        print(f"wrote {path}")
    return 0


def _cmd_gen_validate(args: argparse.Namespace) -> int:
    from .workloads import WorkloadSpec

    for file in args.files:
        spec = WorkloadSpec.load(file)
        print(f"{file}: ok -- {spec.name}: {spec.threads} threads, "
              f"{spec.pages} pages, {len(spec.phases)} phase(s), "
              f"{spec.total_ops_per_thread} ops/thread")
    return 0


def _cmd_gen_run(args: argparse.Namespace) -> int:
    from .analysis.costmodel import run_counters
    from .workloads import (
        SpecError,
        WorkloadSpec,
        fingerprint_spec,
        generate_spec,
        run_spec,
    )

    specs = []
    if args.seed is not None:
        specs.extend(generate_spec(args.seed + i, args.profile)
                     for i in range(args.count))
    specs.extend(WorkloadSpec.load(file) for file in args.files)
    if not specs:
        raise SpecError("give spec files to run, or --seed to generate")
    policy = args.policy
    policy_args = _parse_policy_args(args.policy_args, "gen")
    if policy_args is _POLICY_ARGS_ERROR:
        return 2
    if args.tuned:
        from .policy import TuneError, load_tuned

        try:
            policy, policy_args = load_tuned(args.tuned)
        except TuneError as exc:
            print(f"repro gen: {exc}")
            return 2
    for spec in specs:
        _kernel, result = run_spec(
            spec,
            policy=policy,
            policy_args=policy_args,
            machine=args.machine,
            defrost_period=(
                args.defrost_period_ms * 1e6
                if args.defrost_period_ms is not None else None
            ),
            check_invariants=args.check_invariants,
        )
        counters = run_counters(result)
        print(f"{spec.name}: {result.sim_time_ms:.2f} ms simulated on "
              f"{spec.threads} threads / "
              f"{args.machine or spec.machine} processors -- "
              f"{counters['faults']} faults, "
              f"{counters['freezes']} freezes"
              + (", invariants clean" if args.check_invariants else ""))
        if args.fingerprint:
            fp = fingerprint_spec(spec)
            print(f"  fingerprint: spec {fp['spec_sha256'][:12]} "
                  f"trace {fp['trace_sha256'][:12]} "
                  f"({fp['events_executed']} events)")
    return 0


def _cmd_gen_corpus(args: argparse.Namespace) -> int:
    from .workloads import write_corpus

    written = write_corpus(args.out, n=args.count,
                           base_seed=args.base_seed,
                           profile=args.profile)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_gen_verify(args: argparse.Namespace) -> int:
    from .workloads import verify_corpus

    problems = verify_corpus(args.dir,
                             fingerprints=not args.no_fingerprints)
    if problems:
        for problem in problems:
            print(problem)
        print(f"{len(problems)} corpus problem(s): regenerate with "
              "'python -m repro gen corpus' and commit the result")
        return 1
    print(f"corpus ok: {args.dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLATINUM (SOSP 1989) reproduction experiments",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="write a repro-events/1 run ledger (span/event JSONL) of "
        "this invocation to PATH; the REPRO_LEDGER environment "
        "variable does the same (inspect with `repro obs ledger`)")
    parser.add_argument(
        "--history", nargs="?", const="", default=None, metavar="DIR",
        help="append one repro-run/1 summary of this invocation to "
        "the cross-run history store (default .repro/history, or "
        "DIR); the REPRO_HISTORY environment variable does the same "
        "(query with `repro obs history`)")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="the section 4.1 cost-model table")
    t1.add_argument("--machine-constants", dest="paper_constants",
                    action="store_false",
                    help="derive constants from the simulated machine "
                    "instead of the paper's")
    t1.set_defaults(fn=_cmd_table1)

    tr = sub.add_parser("transitions",
                        help="the Figure 4 protocol diagram")
    tr.set_defaults(fn=_cmd_transitions)

    mi = sub.add_parser("micro", help="section 4 microbenchmarks")
    mi.set_defaults(fn=_cmd_micro)

    def workload_args(p, default_n):
        p.add_argument("-n", type=int, default=default_n,
                       help="problem size")
        p.add_argument("-p", type=int, default=8,
                       help="threads to use")
        p.add_argument("--machine", type=int, default=16,
                       help="processors in the simulated machine")
        p.add_argument("--epochs", type=int, default=25,
                       help="training epochs (neural only)")
        p.add_argument("--no-verify", dest="verify",
                       action="store_false",
                       help="skip the end-to-end result check")

    retention_epilog = (
        "trace retention modes:\n"
        "  --trace         keep the first 1,000,000 events in memory\n"
        "                  (keep-first; later events are counted as\n"
        "                  dropped) and print a timeline\n"
        "  --trace-out     stream every event to PATH as it happens --\n"
        "                  no in-memory cap; .jsonl writes JSON Lines,\n"
        "                  any other extension writes Chrome trace-event\n"
        "                  JSON loadable in Perfetto / chrome://tracing\n"
        "  both            stream to PATH and keep events for the\n"
        "                  printed timeline\n"
        "ring mode (newest events win) is used by `repro dashboard`;\n"
        "see docs/OBSERVABILITY.md for the full catalog."
    )

    for name, default_n in (("gauss", 64), ("mergesort", 16384),
                            ("neural", 40), ("jacobi", 48),
                            ("matmul", 48)):
        rp = sub.add_parser(
            name,
            help=f"run {name} and print the post-mortem report",
            epilog=retention_epilog,
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )
        workload_args(rp, default_n)
        rp.add_argument("--policy", default=None,
                        choices=policy_names(),
                        help="replication policy (default: the "
                        "paper's freeze/defrost policy)")
        rp.add_argument("--policy-args", default=None, metavar="JSON",
                        help="policy constructor kwargs as a JSON "
                        "object")
        rp.add_argument("--trace", action="store_true",
                        help="record and print the protocol trace")
        rp.add_argument("--trace-out", default=None, metavar="PATH",
                        help="stream the protocol trace to PATH "
                        "(.jsonl -> JSON Lines, else Chrome "
                        "trace-event JSON)")
        rp.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable the metrics registry + sim-time "
                        "sampler and write metric/sample records to "
                        "PATH as JSON Lines")
        rp.add_argument("--sample-ms", type=float, default=1.0,
                        help="sim-time sampling period in simulated "
                        "milliseconds (with --metrics-out)")
        rp.add_argument("--rows", type=int, default=15,
                        help="report rows to print")
        rp.set_defaults(fn=_cmd_run, workload=name)

    rc = sub.add_parser(
        "record",
        help="run a workload once and write a repro-trace bundle",
    )
    rc.add_argument("workload",
                    choices=("gauss", "mergesort", "neural", "jacobi",
                             "matmul"),
                    help="workload to record")
    workload_args(rc, 64)
    rc.add_argument("-o", "--out", default=None, metavar="PATH",
                    help="bundle path (default: WORKLOAD.trace)")
    rc.add_argument("--policy", default=None,
                    choices=policy_names(),
                    help="coherence policy to record under "
                    "(default: the paper's freeze/defrost policy)")
    rc.add_argument("--policy-args", default=None, metavar="JSON",
                    help="policy constructor kwargs as a JSON object")
    rc.add_argument("--no-defrost", dest="defrost",
                    action="store_false",
                    help="record with the defrost daemon disabled")
    rc.add_argument("--defrost-period-ms", type=float, default=None,
                    help="defrost daemon period in simulated ms")
    rc.set_defaults(fn=_cmd_record, defrost=True)

    rx = sub.add_parser(
        "replay",
        help="re-simulate a recorded trace under policy/machine "
        "variants",
    )
    rx.add_argument("trace", help="repro-trace bundle to replay")
    rx.add_argument("--policy", default=None,
                    choices=policy_names(),
                    help="override the recorded coherence policy")
    rx.add_argument("--policy-args", default=None, metavar="JSON",
                    help="policy constructor kwargs as a JSON object")
    rx.add_argument("--tuned", default=None, metavar="FILE",
                    help="replay under the policy and parameters of a "
                    "repro-tune/1 document (from `repro tune`); "
                    "overrides --policy/--policy-args")
    defr = rx.add_mutually_exclusive_group()
    defr.add_argument("--defrost", dest="defrost", default=None,
                      action="store_true",
                      help="force the defrost daemon on")
    defr.add_argument("--no-defrost", dest="defrost",
                      action="store_false",
                      help="force the defrost daemon off")
    rx.add_argument("--defrost-period-ms", type=float, default=None,
                    help="override the defrost period in simulated ms")
    rx.add_argument("--param", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="override a machine timing parameter "
                    "(repeatable; e.g. --param t_remote_read=10000)")
    rx.add_argument("--check", action="store_true",
                    help="assert the replay reproduces the recording "
                    "run exactly (sim time, events, counters)")
    rx.add_argument("--fast", action="store_true",
                    help="array-at-a-time costing: batches fault-free "
                    "stretches into windows (approximate timing; "
                    "incompatible with --check)")
    rx.add_argument("--rows", type=int, default=15,
                    help="report rows to print")
    rx.set_defaults(fn=_cmd_replay)

    tu = sub.add_parser(
        "tune",
        help="closed-loop policy tuning: replay candidate parameter "
        "sets against a recorded trace and emit the winner as a "
        "repro-tune/1 document",
    )
    tu.add_argument("trace", help="repro-trace bundle to tune against")
    tu.add_argument("--policy", default="adaptive",
                    choices=("adaptive", "competitive", "tuned"),
                    help="zoo member to tune (default: adaptive)")
    tu.add_argument("--max-pages", type=int, default=64,
                    help="pages the counterfactual scorer prices "
                    "(--policy tuned)")
    tu.add_argument("-o", "--out", default="-", metavar="PATH",
                    help="write the tuned-parameter document to PATH "
                    "(default: stdout)")
    tu.set_defaults(fn=_cmd_tune)

    me = sub.add_parser(
        "metrics",
        help="run a workload with the telemetry registry enabled and "
        "print the metrics table + sampled timeline",
    )
    me.add_argument(
        "workload",
        nargs="?",
        choices=("gauss", "mergesort", "neural", "jacobi", "matmul"),
        help="workload to run (omit with --from)",
    )
    workload_args(me, 48)
    me.add_argument("--sample-ms", type=float, default=1.0,
                    help="sim-time sampling period in simulated "
                    "milliseconds")
    me.add_argument("--out", default=None, metavar="PATH",
                    help="also write metric/sample records to PATH as "
                    "JSON Lines")
    me.add_argument("--from", dest="from_file", default=None,
                    metavar="FILE",
                    help="summarize a previously written metrics JSONL "
                    "file instead of running a workload")
    me.add_argument("--format", choices=("text", "prom"),
                    default="text",
                    help="output format: the human table (text) or "
                    "Prometheus text exposition 0.0.4 (prom; stdout "
                    "is then the exposition document)")
    me.set_defaults(fn=_cmd_metrics, verify=False)

    ex = sub.add_parser(
        "explain",
        help="the causal coherence profiler: cost attribution, "
        "critical path, and per-page policy diagnostics",
        epilog=(
            "targets:\n"
            "  gauss|mergesort|neural|jacobi|matmul\n"
            "                  run the workload live with the tracer\n"
            "                  and access probe enabled\n"
            "  sec42           the section 4.2 anecdote: Gauss with the\n"
            "                  column lock sharing a page with the\n"
            "                  column-size word (false sharing)\n"
            "  PATH.jsonl      a saved profile bundle (explain --save)\n"
            "                  or a bare --trace-out export (degraded:\n"
            "                  protocol costs only)\n"
            "see docs/OBSERVABILITY.md for the category definitions."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ex.add_argument(
        "target",
        help="workload name, 'sec42', or a saved .jsonl trace/bundle",
    )
    ex.add_argument("-n", type=int, default=None,
                    help="problem size (live runs; default depends on "
                    "the workload, 24 for sec42)")
    ex.add_argument("-p", type=int, default=8,
                    help="threads to use (live runs)")
    ex.add_argument("--machine", type=int, default=16,
                    help="processors in the simulated machine "
                    "(live runs)")
    ex.add_argument("--epochs", type=int, default=25,
                    help="training epochs (neural only)")
    ex.add_argument("--page", type=int, default=None, metavar="N",
                    help="include cpage N's diagnosis and lifecycle "
                    "timeline even if it is not in the top K")
    ex.add_argument("--top", type=int, default=5, metavar="K",
                    help="pages to rank (default 5)")
    ex.add_argument("--critical-path", action="store_true",
                    help="also compute the longest causally-dependent "
                    "protocol chain")
    ex.add_argument("--format", choices=("text", "json"),
                    default="text",
                    help="report format (json is canonical and "
                    "byte-stable across same-seed runs)")
    ex.add_argument("--save", default=None, metavar="PATH",
                    help="also write the profile bundle (events + "
                    "counters) to PATH for later `repro explain PATH`")
    ex.set_defaults(fn=_cmd_explain, verify=False)

    dr = sub.add_parser(
        "doctor",
        help="the streaming anomaly doctor: run the detector catalog "
        "(false sharing, shootdown storms, frozen thrash, defrost "
        "starvation, pool wall anomalies) and emit a repro-findings/1 "
        "report",
        epilog=(
            "targets (same resolution as `repro explain`):\n"
            "  gauss|mergesort|neural|jacobi|matmul\n"
            "                  run the workload live under the tracer\n"
            "  sec42           the section 4.2 false-sharing anecdote\n"
            "  PATH.jsonl      a saved profile bundle / trace export,\n"
            "                  or a repro-events/1 run ledger (pool\n"
            "                  detector only)\n"
            "see the detector catalog in docs/OBSERVABILITY.md."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    dr.add_argument(
        "target",
        help="workload name, 'sec42', a workload spec, a saved "
        ".jsonl trace/bundle, or a run ledger",
    )
    dr.add_argument("-n", type=int, default=None,
                    help="problem size (live runs; default depends on "
                    "the workload, 24 for sec42)")
    dr.add_argument("-p", type=int, default=8,
                    help="threads to use (live runs)")
    dr.add_argument("--machine", type=int, default=16,
                    help="processors in the simulated machine "
                    "(live runs)")
    dr.add_argument("--epochs", type=int, default=25,
                    help="training epochs (neural only)")
    dr.add_argument("--detector", action="append", default=None,
                    metavar="NAME",
                    help="run only this detector (repeatable; "
                    "default: the whole catalog)")
    dr.add_argument("--format", choices=("text", "json"),
                    default="text",
                    help="report format (json is the canonical "
                    "repro-findings/1 document; deterministic outside "
                    "its wall key)")
    dr.add_argument("-o", "--out", default=None, metavar="PATH",
                    help="also write the findings document to PATH")
    dr.set_defaults(fn=_cmd_doctor, verify=False)

    db = sub.add_parser(
        "dashboard",
        help="run a workload traced and print the full visualization "
        "dashboard",
    )
    db.add_argument(
        "workload",
        choices=("gauss", "mergesort", "neural", "jacobi", "matmul"),
    )
    workload_args(db, 48)
    db.set_defaults(fn=_cmd_dashboard, verify=False)

    sp = sub.add_parser("speedup", help="measure a speedup curve")
    sp.add_argument(
        "workload",
        choices=("gauss", "mergesort", "neural", "jacobi", "matmul"),
    )
    workload_args(sp, 200)
    sp.add_argument("--counts", default="1,2,4,8,16",
                    help="comma-separated processor counts")
    sp.set_defaults(fn=_cmd_speedup, verify=False)

    cp = sub.add_parser("compare",
                        help="the section 5.1 three-system comparison")
    cp.add_argument("-n", type=int, default=400, help="matrix size")
    cp.add_argument("--machine", type=int, default=16)
    cp.set_defaults(fn=_cmd_compare)

    be = sub.add_parser(
        "bench",
        help="run the benchmark sweep and write BENCH_<target>.json "
        "documents",
    )
    scale_group = be.add_mutually_exclusive_group()
    scale_group.add_argument(
        "--quick", action="store_true",
        help="CI-sized problem sizes (the default)")
    scale_group.add_argument(
        "--full", action="store_true",
        help="the paper's problem sizes (slow)")
    scale_group.add_argument(
        "--smoke", action="store_true",
        help="tiny problem sizes (test-suite use)")
    scale_group.add_argument(
        "--scale", default=None, metavar="SCALE",
        help="scale by name: smoke, quick or full")
    be.add_argument("--jobs", type=int, default=1,
                    help="worker processes (1 = serial, the default)")
    be.add_argument("--filter", default=None, metavar="PAT",
                    help="only targets whose name contains or "
                    "glob-matches PAT")
    be.add_argument("--out", default="benchmarks/results",
                    help="results directory "
                    "(default: benchmarks/results)")
    be.add_argument("--snapshot", default=None, metavar="PATH",
                    help="also write the combined snapshot document "
                    "(all targets, wall-clock fields stripped for "
                    "byte-stable comparison) to PATH")
    be.add_argument("--update", action="store_true",
                    help="regenerate the committed smoke snapshot in "
                    "one verb: forces --smoke and writes "
                    "BENCH_smoke.json (or the --snapshot path)")
    be.add_argument("--base-seed", type=int, default=0,
                    help="base seed folded into every per-point seed")
    be.add_argument("--timeout", type=float, default=None,
                    help="per-point wall-clock timeout in seconds "
                    "(default depends on scale)")
    be.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the per-point progress lines")
    be.add_argument("--compare", default=None, metavar="BASELINE",
                    help="after the sweep, compare against a baseline "
                    "(snapshot file, BENCH_*.json or results dir) and "
                    "exit 1 on drift or wall regression")
    be.add_argument("--profile-wall", type=int, default=0, metavar="N",
                    help="cProfile every point and embed the slowest N "
                    "per target in the BENCH document (wall-clock "
                    "data: stripped from snapshots)")
    be.set_defaults(fn=_cmd_bench)

    ob = sub.add_parser(
        "obs",
        help="fleet observability: inspect run ledgers and gate on "
        "the perf trajectory",
    )
    obsub = ob.add_subparsers(dest="obs_mode", required=True)

    obt = obsub.add_parser(
        "trend",
        help="compare a series of bench outputs (snapshots, "
        "BENCH_*.json or results dirs) and emit repro-trend/1 "
        "verdicts; exit 1 on drift or wall regression",
    )
    obt.add_argument("files", nargs="*",
                     help="two or more bench outputs, oldest first "
                     "(or none with --history)")
    obt.add_argument("--history", type=int, dest="history_n",
                     default=None, metavar="N",
                     help="gate the last N bench-carrying runs from "
                     "the history store instead of explicit files "
                     "(0 = every run)")
    obt.add_argument("--history-dir", default=None, metavar="DIR",
                     help="history store location (default: "
                     "REPRO_HISTORY or .repro/history)")
    obt.add_argument("--wall-tolerance", type=float,
                     default=None, metavar="R",
                     help="wall ratio above R is a regression "
                     "(default 1.5)")
    obt.add_argument("--min-wall-s", type=float, default=None,
                     metavar="S",
                     help="baseline walls under S seconds are noise, "
                     "never judged (default 0.05)")
    obt.add_argument("--format", choices=("text", "json"),
                     default="text", help="report format")
    obt.add_argument("-o", "--out", default=None, metavar="PATH",
                     help="also write the verdict document to PATH")
    obt.set_defaults(fn=_cmd_obs_trend)

    obl = obsub.add_parser(
        "ledger",
        help="validate and summarize a repro-events/1 run ledger",
    )
    obl.add_argument("path", help="ledger .jsonl file (from --ledger)")
    obl.add_argument("--strip-wall", action="store_true",
                     help="print the rerun-comparable records (wall "
                     "fields dropped, sid order) as JSON Lines "
                     "instead of the span tree")
    obl.add_argument("--follow", action="store_true",
                     help="tail mode: render records (sweep progress "
                     "ticks, pool heartbeats, spans) as they are "
                     "written, until the close record")
    obl.add_argument("--poll-s", type=float, default=0.2,
                     metavar="S",
                     help="--follow poll interval in seconds")
    obl.add_argument("--timeout", type=float, default=300.0,
                     metavar="S",
                     help="--follow gives up after S seconds without "
                     "a close record")
    obl.set_defaults(fn=_cmd_obs_ledger)

    obh = obsub.add_parser(
        "history",
        help="query the cross-run history store "
        "(repro --history <verb> appends to it)",
    )
    obhsub = obh.add_subparsers(dest="history_mode", required=True)

    obhl = obhsub.add_parser(
        "list", help="one line per recorded run")
    obhl.add_argument("-n", "--last", type=int, default=None,
                      help="only the last N runs")
    obhl.add_argument("--dir", dest="history_dir", default=None,
                      metavar="DIR",
                      help="history store location (default: "
                      "REPRO_HISTORY or .repro/history)")
    obhl.set_defaults(fn=_cmd_obs_history_list)

    obhs = obhsub.add_parser(
        "show", help="print one run's repro-run/1 summary")
    obhs.add_argument("run", nargs="?", type=int, default=None,
                      help="run index (default: the latest)")
    obhs.add_argument("--strip-wall", action="store_true",
                      help="print the rerun-comparable summary (wall "
                      "key dropped) as one compact JSON line")
    obhs.add_argument("--dir", dest="history_dir", default=None,
                      metavar="DIR",
                      help="history store location (default: "
                      "REPRO_HISTORY or .repro/history)")
    obhs.set_defaults(fn=_cmd_obs_history_show)

    obht = obhsub.add_parser(
        "trend",
        help="series perf gate over the store's bench-carrying runs "
        "(same verdicts as `repro obs trend --history`)")
    obht.add_argument("-n", "--last", type=int, default=None,
                      help="only the last N runs (default: all)")
    obht.add_argument("--dir", dest="history_dir", default=None,
                      metavar="DIR",
                      help="history store location (default: "
                      "REPRO_HISTORY or .repro/history)")
    obht.add_argument("--wall-tolerance", type=float, default=None,
                      metavar="R",
                      help="wall ratio above R is a regression "
                      "(default 1.5)")
    obht.add_argument("--min-wall-s", type=float, default=None,
                      metavar="S",
                      help="baseline walls under S seconds are noise "
                      "(default 0.05)")
    obht.add_argument("--format", choices=("text", "json"),
                      default="text", help="report format")
    obht.add_argument("-o", "--out", default=None, metavar="PATH",
                      help="also write the verdict document to PATH")
    obht.set_defaults(fn=_cmd_obs_history_trend)

    ck = sub.add_parser(
        "check",
        help="the coherence conformance harness (invariants, trace "
        "conformance, schedule fuzzing)",
    )
    cksub = ck.add_subparsers(dest="check_mode", required=True)

    cki = cksub.add_parser(
        "invariants",
        help="run the workload battery with the global invariant "
        "checker hooked after every protocol action",
    )
    cki.add_argument("--machine", type=int, default=8,
                     help="processors in the simulated machine")
    cki.set_defaults(fn=_cmd_check_invariants)

    ckc = cksub.add_parser(
        "conformance",
        help="replay traced workload runs against the Figure 4 "
        "transition table",
    )
    ckc.add_argument("--machine", type=int, default=8,
                     help="processors in the simulated machine")
    ckc.set_defaults(fn=_cmd_check_conformance)

    ckf = cksub.add_parser(
        "fuzz",
        help="run seeded random schedules under perturbed event "
        "orderings with invariants enabled",
    )
    ckf.add_argument("--seeds", type=int, default=100,
                     help="number of seeded schedules to run")
    ckf.add_argument("--ops", type=int, default=40,
                     help="operations per schedule")
    ckf.add_argument("--procs", type=int, default=3,
                     help="processors in the fuzz kernel")
    ckf.add_argument("--pages", type=int, default=3,
                     help="shared coherent pages in the schedule")
    ckf.add_argument("--base-seed", type=int, default=0,
                     help="first seed (seeds are base..base+N-1)")
    ckf.add_argument("--no-shrink", dest="shrink", action="store_false",
                     help="report failing schedules without delta-"
                     "debugging them to a minimal reproduction")
    ckf.add_argument("-v", "--verbose", action="store_true",
                     help="print one line per seed")
    ckf.add_argument("--corpus", metavar="DIR",
                     help="fuzz schedules lowered from the generated-"
                     "workload specs in DIR instead of random ones")
    ckf.add_argument("--policies", default="freeze,always",
                     help="comma-separated policies for --corpus runs")
    ckf.set_defaults(fn=_cmd_check_fuzz)

    ge = sub.add_parser(
        "gen",
        help="declarative workload specs: emit, validate, run and "
        "drift-check a constrained-random corpus",
    )
    gesub = ge.add_subparsers(dest="gen_mode", required=True)

    gee = gesub.add_parser(
        "emit", help="generate spec files from consecutive seeds")
    gee.add_argument("--seed", type=int, required=True,
                     help="first generation seed")
    gee.add_argument("-n", "--count", type=int, default=1,
                     help="number of specs (seeds seed..seed+N-1)")
    gee.add_argument("--profile", choices=("smoke", "quick"),
                     default="smoke", help="generation size profile")
    gee.add_argument("-o", "--out", default=".",
                     help="output directory, or - for stdout")
    gee.set_defaults(fn=_cmd_gen, gen_fn=_cmd_gen_emit)

    gev = gesub.add_parser(
        "validate", help="check spec files against the schema")
    gev.add_argument("files", nargs="+", help="spec .json files")
    gev.set_defaults(fn=_cmd_gen, gen_fn=_cmd_gen_validate)

    ger = gesub.add_parser(
        "run", help="simulate spec files (or fresh seeds)")
    ger.add_argument("files", nargs="*", help="spec .json files")
    ger.add_argument("--seed", type=int,
                     help="generate and run from this seed instead")
    ger.add_argument("-n", "--count", type=int, default=1,
                     help="specs to generate with --seed")
    ger.add_argument("--profile", choices=("smoke", "quick"),
                     default="smoke", help="profile for --seed")
    ger.add_argument("--policy",
                     choices=policy_names(),
                     help="replication policy override")
    ger.add_argument("--policy-args", default=None, metavar="JSON",
                     help="policy constructor kwargs as a JSON object")
    ger.add_argument("--tuned", default=None, metavar="FILE",
                     help="run under the policy and parameters of a "
                     "repro-tune/1 document; overrides --policy")
    ger.add_argument("--machine", type=int,
                     help="processors (default: the spec's machine)")
    ger.add_argument("--defrost-period-ms", type=float, default=None,
                     help="defrost daemon period in simulated ms")
    ger.add_argument("--check-invariants", action="store_true",
                     help="hook the invariant checker after every "
                     "protocol action")
    ger.add_argument("--fingerprint", action="store_true",
                     help="also record each run and print its "
                     "trace-level fingerprint")
    ger.set_defaults(fn=_cmd_gen, gen_fn=_cmd_gen_run)

    gec = gesub.add_parser(
        "corpus",
        help="(re)write a golden corpus: spec files + FINGERPRINTS.json")
    gec.add_argument("-o", "--out", default="tests/corpus",
                     help="corpus directory")
    gec.add_argument("-n", "--count", type=int, default=20,
                     help="number of specs")
    gec.add_argument("--base-seed", type=int, default=100,
                     help="first generation seed")
    gec.add_argument("--profile", choices=("smoke", "quick"),
                     default="smoke", help="generation size profile")
    gec.set_defaults(fn=_cmd_gen, gen_fn=_cmd_gen_corpus)

    gey = gesub.add_parser(
        "verify",
        help="drift-check a corpus directory (byte-stable specs, "
        "reproducible fingerprints)")
    gey.add_argument("dir", nargs="?", default="tests/corpus",
                     help="corpus directory")
    gey.add_argument("--no-fingerprints", action="store_true",
                     help="skip re-recording runs; check spec bytes only")
    gey.set_defaults(fn=_cmd_gen, gen_fn=_cmd_gen_verify)

    return parser


def _dispatch(args: argparse.Namespace,
              argv: Optional[Sequence[str]]) -> int:
    """Run the verb, under a run-ledger root span and/or a history
    recorder when asked for (``--ledger PATH`` / ``REPRO_LEDGER``,
    ``--history [DIR]`` / ``REPRO_HISTORY``).  Both finalize in a
    ``finally`` so a crashing verb still leaves a valid, truncated
    ledger and an error-status history summary.  ``repro obs`` itself
    is never recorded: querying the store must not grow it."""
    import os

    argv_list = [str(a) for a in
                 (argv if argv is not None else sys.argv[1:])]
    ledger_dest = args.ledger or os.environ.get("REPRO_LEDGER")
    want_history = args.command != "obs" and (
        args.history is not None
        or bool(os.environ.get("REPRO_HISTORY"))
    )
    if not ledger_dest and not want_history:
        return args.fn(args)
    from .obs import set_ledger, set_recorder

    recorder = None
    if want_history:
        from .obs import RunRecorder, history_root

        recorder = RunRecorder(history_root(args.history or None),
                               args.command, argv_list)
        set_recorder(recorder)
    ledger = None
    root = None
    if ledger_dest:
        from .obs import RunLedger

        ledger = RunLedger(ledger_dest, verb=args.command,
                           argv=argv_list)
        set_ledger(ledger)
        root = ledger.span(f"cli.{args.command}")
    status = "error"
    code = 1
    try:
        code = args.fn(args)
        status = "ok" if code == 0 else "error"
        if root is not None:
            root.attrs["exit_code"] = code
        return code
    finally:
        if root is not None:
            root.end(status=status)
        if ledger is not None:
            ledger.close(status=status)
            set_ledger(None)
        if recorder is not None:
            if ledger is not None:
                from .obs import read_ledger

                try:
                    recorder.note_ledger(read_ledger(ledger_dest))
                except (OSError, ValueError):
                    pass  # a torn ledger must not mask the verb's exit
            recorder.finish(status=status, exit_code=code)
            set_recorder(None)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args, argv)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
