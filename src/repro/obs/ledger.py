"""The structured run ledger: ``repro-events/1`` span/event JSONL.

Every CLI verb opens a *root span*; pipelines nest child spans under it
(``bench.sweep`` -> ``bench.point``, ``record.simulate`` ->
``record.save``, ...), and point events mark things that happen at an
instant (a worker respawn, a stall warning).  The ledger is the fleet
counterpart of the per-simulation trace: where ``--trace-out`` records
what the *simulated machine* did in simulated nanoseconds, the ledger
records what the *tooling* did in wall-clock seconds -- which verb ran,
how the sweep sharded across workers, where the wall time went.

Record shapes (one sorted-key JSON object per line)::

    {"record":"meta","schema":"repro-events/1","verb":"bench",
     "argv":["--scale","smoke"],"wall":{"pid":123,"t0_s":...}}
    {"record":"span","sid":2,"parent":1,"name":"bench.point",
     "attrs":{"task":"fig1_gauss::p=4","ok":true},
     "status":"ok","wall":{"t0_s":...,"dur_s":0.41,"worker":0}}
    {"record":"event","sid":9,"parent":1,"name":"pool.respawn",
     "attrs":{"worker":2},"wall":{"t_s":...}}
    {"record":"tick","name":"bench.progress",
     "wall":{"t_s":...,"task":"fig1_gauss::p=4","done":3,"total":9}}
    {"record":"close","status":"ok","spans":7,"events":2,
     "wall":{"dur_s":1.93}}

``tick`` records are the streaming-progress channel ``repro obs ledger
--follow`` renders: they carry *only* wall-clock payload (no sid, every
field under ``wall``), are emitted in completion order, and are dropped
wholesale by :func:`strip_wall_ledger` -- so live progress never
perturbs the deterministic sid assignment or the rerun-comparable view.

Determinism contract: **everything outside the ``wall`` object derives
from the work itself** (span names, task names, seeds, counts, sim-time
figures), so two runs of the same deterministic command produce ledgers
that are byte-identical after :func:`strip_wall` -- the same contract
``BENCH_*.json`` documents make via ``strip_wall_clock``.  All
wall-clock-dependent values (timestamps, durations, pids, worker
assignment, queue waits) live under ``wall``.

Crash behaviour: records are flushed line-by-line, and span records are
written when the span *ends* -- so an interrupted run leaves a valid,
truncated-but-parseable file, and :meth:`RunLedger.close` (call it from
a ``finally``) ends any still-open spans with ``status: "aborted"``.
:func:`read_ledger` additionally tolerates a torn final line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Any, Iterator, Optional, Union

#: schema tag of the run ledger
LEDGER_SCHEMA = "repro-events/1"

#: the per-record key holding every wall-clock-dependent field
WALL_KEY = "wall"


class LedgerError(ValueError):
    """A malformed ledger file or misuse of the ledger API."""


class Span:
    """One timed, named, nestable unit of work.

    Use as a context manager (the usual way) or call :meth:`end`
    explicitly.  An exception ending the span records
    ``status: "error"`` plus the exception repr, then propagates.
    """

    __slots__ = ("ledger", "sid", "parent", "name", "attrs", "wall",
                 "_t0", "_wall_t0", "closed")

    def __init__(self, ledger: "RunLedger", sid: int,
                 parent: Optional[int], name: str,
                 attrs: Optional[dict] = None) -> None:
        self.ledger = ledger
        self.sid = sid
        self.parent = parent
        self.name = name
        self.attrs: dict = dict(attrs or {})
        #: extra wall-clock fields merged into the span's ``wall`` object
        self.wall: dict = {}
        self._t0 = time.perf_counter()
        self._wall_t0 = time.time()
        self.closed = False

    def event(self, name: str, **attrs: Any) -> None:
        """A point event parented to this span."""
        self.ledger.event(name, parent=self.sid, **attrs)

    def end(self, status: str = "ok") -> None:
        if self.closed:
            return
        self.closed = True
        wall = {
            "t0_s": round(self._wall_t0, 6),
            "dur_s": round(time.perf_counter() - self._t0, 6),
        }
        wall.update(self.wall)
        self.ledger._write_span(self, status, wall)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is None:
            self.end()
        else:
            self.attrs["error"] = repr(exc)
            self.end(status="error")


class _NullSpan:
    """The no-op span handed out when no ledger is active: every method
    exists and does nothing, so instrumented code never branches."""

    sid = None

    @property
    def attrs(self) -> dict:
        # a fresh dict per access: writes are discarded, never shared
        return {}

    @property
    def wall(self) -> dict:
        return {}

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def end(self, status: str = "ok") -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class RunLedger:
    """Writes one ``repro-events/1`` JSONL ledger, span by span.

    Spans form a stack: :meth:`span` without an explicit ``parent``
    nests under the innermost open span, which is what CLI pipelines
    want (root verb span -> stage spans -> per-point spans).
    """

    def __init__(
        self,
        destination: Union[str, Path, IO[str]],
        verb: str = "",
        argv: Optional[list] = None,
    ) -> None:
        if hasattr(destination, "write"):
            self.stream: IO[str] = destination  # type: ignore[assignment]
            self._owns = False
        else:
            path = Path(destination)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            self.stream = open(path, "w")
            self._owns = True
        self.verb = verb
        self._next_sid = 1
        self._stack: list[Span] = []
        self.spans = 0
        self.events = 0
        self.closed = False
        self._t0 = time.perf_counter()
        self._write({
            "record": "meta",
            "schema": LEDGER_SCHEMA,
            "verb": verb,
            "argv": list(argv or []),
            WALL_KEY: {"pid": os.getpid(),
                       "t0_s": round(time.time(), 6)},
        })

    # -- record output ------------------------------------------------------

    def _write(self, record: dict) -> None:
        self.stream.write(json.dumps(
            record, sort_keys=True, separators=(",", ":"),
        ))
        self.stream.write("\n")
        # line-at-a-time flush: a crash mid-run still leaves a valid,
        # truncated-but-parseable ledger (spans are coarse, so this is
        # a few dozen flushes per verb, not per simulated event)
        self.stream.flush()

    def _write_span(self, span: Span, status: str, wall: dict) -> None:
        if span in self._stack:
            self._stack.remove(span)
        self.spans += 1
        record = {
            "record": "span",
            "sid": span.sid,
            "parent": span.parent,
            "name": span.name,
            "status": status,
            WALL_KEY: wall,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    # -- the span API -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (new spans nest under it)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, parent: Optional[int] = None,
             **attrs: Any) -> Span:
        """Open a nested span; close it via ``with`` or :meth:`end`."""
        if parent is None and self._stack:
            parent = self._stack[-1].sid
        span = Span(self, self._next_sid, parent, name, attrs)
        self._next_sid += 1
        self._stack.append(span)
        return span

    def event(self, name: str, parent: Optional[int] = None,
              wall: Optional[dict] = None, **attrs: Any) -> None:
        """Record a point event (no duration)."""
        if parent is None and self._stack:
            parent = self._stack[-1].sid
        self.events += 1
        record: dict = {
            "record": "event",
            "sid": self._next_sid,
            "parent": parent,
            "name": name,
            WALL_KEY: {"t_s": round(time.time(), 6),
                       **(wall or {})},
        }
        self._next_sid += 1
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def tick(self, name: str, **wall: Any) -> None:
        """A wall-only progress record for live ``--follow`` readers.

        Ticks carry no sid and keep their entire payload under ``wall``:
        they exist for a human (or ``repro obs ledger --follow``)
        watching the run, and vanish from the stripped rerun-comparable
        view -- emitting them in nondeterministic completion order is
        therefore safe.
        """
        self._write({
            "record": "tick",
            "name": name,
            WALL_KEY: {"t_s": round(time.time(), 6), **wall},
        })

    def append_span(self, name: str, attrs: dict, wall: dict,
                    parent: Optional[int] = None,
                    status: str = "ok") -> None:
        """Write a span whose timing was measured elsewhere -- the bench
        worker pool uses this to ledger per-point spans measured inside
        worker processes (the propagated context supplies ``parent``)."""
        if parent is None and self._stack:
            parent = self._stack[-1].sid
        self.spans += 1
        record = {
            "record": "span",
            "sid": self._next_sid,
            "parent": parent,
            "name": name,
            "status": status,
            WALL_KEY: dict(wall),
        }
        self._next_sid += 1
        if attrs:
            record["attrs"] = dict(attrs)
        self._write(record)

    def close(self, status: str = "ok") -> None:
        """End open spans (as ``aborted``), write the close record and
        release the stream.  Safe to call twice."""
        if self.closed:
            return
        while self._stack:
            self._stack[-1].end(status="aborted")
        self._write({
            "record": "close",
            "status": status,
            "spans": self.spans,
            "events": self.events,
            WALL_KEY: {
                "dur_s": round(time.perf_counter() - self._t0, 6),
            },
        })
        self.closed = True
        self.stream.flush()
        if self._owns:
            self.stream.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.close(status="ok" if exc_type is None else "error")


# -- the ambient ledger --------------------------------------------------------

#: the process-wide active ledger (the CLI sets it; instrumented code
#: reaches it through :func:`span` / :func:`event`, which are no-ops
#: when nothing is active)
_CURRENT: Optional[RunLedger] = None


def set_ledger(ledger: Optional[RunLedger]) -> Optional[RunLedger]:
    """Install ``ledger`` as the ambient ledger; returns the previous
    one so callers can restore it."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = ledger
    return previous


def get_ledger() -> Optional[RunLedger]:
    return _CURRENT


def span(name: str, **attrs: Any):
    """A span on the ambient ledger, or a shared no-op span."""
    if _CURRENT is None:
        return NULL_SPAN
    return _CURRENT.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """A point event on the ambient ledger (no-op without one)."""
    if _CURRENT is not None:
        _CURRENT.event(name, **attrs)


def tick(name: str, **wall: Any) -> None:
    """A progress tick on the ambient ledger (no-op without one)."""
    if _CURRENT is not None:
        _CURRENT.tick(name, **wall)


# -- reading and validation ----------------------------------------------------

def read_ledger(path: Union[str, Path]) -> list[dict]:
    """Parse a ledger file into its records.

    A torn final line (the process died mid-write) is tolerated and
    dropped; a malformed line anywhere else raises :class:`LedgerError`.
    """
    text = Path(path).read_text()
    records: list[dict] = []
    lines = text.split("\n")
    # drop the trailing empty string a well-formed file ends with
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn final line: a truncated-but-valid ledger
            raise LedgerError(
                f"{path}:{lineno}: not a JSON record"
            ) from None
    return records


def validate_ledger(records: list[dict]) -> list[str]:
    """Structural problems with a parsed ledger (empty list == valid)."""
    problems: list[str] = []
    if not records:
        return ["ledger is empty"]
    head = records[0]
    if not isinstance(head, dict) or head.get("record") != "meta":
        problems.append("first record must be the 'meta' record")
    elif head.get("schema") != LEDGER_SCHEMA:
        problems.append(
            f"meta.schema: expected {LEDGER_SCHEMA!r}, "
            f"got {head.get('schema')!r}"
        )
    sids: set = set()
    for i, record in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: expected object")
            continue
        kind = record.get("record")
        if kind not in ("meta", "span", "event", "tick", "close"):
            problems.append(f"{where}: unknown record kind {kind!r}")
            continue
        if kind == "tick":
            if not isinstance(record.get("name"), str):
                problems.append(f"{where}: missing 'name'")
            if not isinstance(record.get(WALL_KEY), dict):
                problems.append(f"{where}: missing '{WALL_KEY}' object")
            if "sid" in record:
                problems.append(
                    f"{where}: ticks are wall-only, must not carry "
                    "'sid'"
                )
            continue
        if kind in ("span", "event"):
            if not isinstance(record.get("sid"), int):
                problems.append(f"{where}: missing integer 'sid'")
            else:
                if record["sid"] in sids:
                    problems.append(
                        f"{where}: duplicate sid {record['sid']}"
                    )
                sids.add(record["sid"])
            if not isinstance(record.get("name"), str):
                problems.append(f"{where}: missing 'name'")
            if not isinstance(record.get(WALL_KEY), dict):
                problems.append(f"{where}: missing '{WALL_KEY}' object")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"{where}: 'parent' must be an int or null")
    return problems


def strip_wall(record: dict) -> dict:
    """A copy of one record with every wall-clock-dependent field
    removed; what remains must be byte-stable across reruns of the same
    deterministic command."""
    return {k: v for k, v in record.items() if k != WALL_KEY}


def strip_wall_ledger(records: list[dict]) -> list[dict]:
    """Rerun-comparable view of a whole ledger: wall fields dropped,
    ticks dropped wholesale (their count and order are wall-dependent
    by design), spans in sid order (parallel sweeps complete, and
    therefore ledger, points in wall-clock order; sids are assigned
    deterministically).  Idempotent: stripping a stripped ledger is a
    no-op."""
    stripped = [strip_wall(r) for r in records
                if r.get("record") != "tick"]
    stripped.sort(
        key=lambda r: (0 if r.get("record") == "meta" else
                       2 if r.get("record") == "close" else 1,
                       r.get("sid", 0))
    )
    return stripped


def iter_spans(records: list[dict]) -> Iterator[dict]:
    for record in records:
        if record.get("record") == "span":
            yield record


def summarize_ledger(records: list[dict]) -> str:
    """A human-readable ledger report: the span tree with durations,
    event counts and the close status."""
    meta = records[0] if records else {}
    spans = list(iter_spans(records))
    events = [r for r in records if r.get("record") == "event"]
    close = next((r for r in records if r.get("record") == "close"),
                 None)
    lines = [
        f"repro-events/1 ledger: verb={meta.get('verb') or '?'}  "
        f"{len(spans)} span(s), {len(events)} event(s)"
        + (f", status={close['status']}" if close else " (no close "
           "record: the run was interrupted)")
    ]
    children: dict[Optional[int], list[dict]] = {}
    for s in spans:
        children.setdefault(s.get("parent"), []).append(s)
    roots = [s for s in spans
             if not any(p.get("sid") == s.get("parent") for p in spans)]

    def walk(span: dict, depth: int) -> None:
        wall = span.get(WALL_KEY, {})
        dur = wall.get("dur_s")
        dur_text = f"{dur:9.3f}s" if isinstance(dur, (int, float)) \
            else "        ?"
        status = span.get("status", "?")
        mark = "" if status == "ok" else f"  [{status}]"
        lines.append(
            f"  {dur_text}  {'  ' * depth}{span.get('name')}{mark}"
        )
        for child in children.get(span.get("sid"), []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    for e in events:
        lines.append(f"      event  {e.get('name')} "
                     f"{e.get('attrs', {})}")
    return "\n".join(lines)


# -- live following ------------------------------------------------------------

def follow_ledger(
    path: Union[str, Path],
    poll_s: float = 0.2,
    timeout_s: Optional[float] = 300.0,
    clock=time.monotonic,
    sleep=time.sleep,
) -> Iterator[dict]:
    """Tail a ledger as it is written, yielding records as they land.

    The writer flushes line by line, so a ``--follow`` reader sees each
    record the moment its span ends (or its tick fires).  Waits for the
    file to appear (start the follower first, then the run), buffers
    torn partial lines until the writer completes them, and returns
    after yielding the ``close`` record.  ``timeout_s`` bounds the whole
    follow (``None`` follows forever); expiry raises
    :class:`LedgerError` so a follower of a crashed run terminates.
    """
    path = Path(path)
    deadline = None if timeout_s is None else clock() + timeout_s
    while not path.exists():
        if deadline is not None and clock() > deadline:
            raise LedgerError(
                f"{path}: no ledger appeared within {timeout_s:g}s"
            )
        sleep(poll_s)
    buffer = ""
    with open(path, "r") as stream:
        while True:
            chunk = stream.read()
            if chunk:
                buffer += chunk
                *complete, buffer = buffer.split("\n")
                for line in complete:
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        raise LedgerError(
                            f"{path}: malformed ledger line while "
                            "following"
                        ) from None
                    yield record
                    if isinstance(record, dict) \
                            and record.get("record") == "close":
                        return
                continue  # drained a chunk: poll again immediately
            if deadline is not None and clock() > deadline:
                raise LedgerError(
                    f"{path}: no close record within {timeout_s:g}s "
                    "(is the run still alive?)"
                )
            sleep(poll_s)


def render_follow_record(record: dict) -> Optional[str]:
    """One human-readable line per followed record (None = skip).

    Progress ticks (``bench.progress``, ``pool.heartbeat``) render as
    in-flight status lines; ``bench.point`` spans as completed points
    (the whole sweep's deterministic record, appended post-sweep);
    other spans and events as their names.
    """
    kind = record.get("record")
    wall = record.get(WALL_KEY, {})
    if kind == "meta":
        return (f"following repro {record.get('verb') or '?'} "
                f"(pid {wall.get('pid', '?')})")
    if kind == "tick":
        name = record.get("name")
        if name == "bench.progress":
            status = "ok" if wall.get("ok") else "FAILED"
            dur = wall.get("dur_s")
            dur_text = f" {dur:.2f}s" if isinstance(dur, (int, float)) \
                else ""
            return (f"  [{wall.get('done', '?')}/{wall.get('total', '?')}]"
                    f" {wall.get('task', '?')} {status}{dur_text}")
        if name == "pool.heartbeat":
            return (f"  pool: {wall.get('busy', 0)} busy, "
                    f"{wall.get('pending', 0)} pending, "
                    f"{wall.get('tasks_done', 0)} done")
        return f"  tick {name}"
    if kind == "span":
        name = record.get("name")
        dur = wall.get("dur_s")
        dur_text = f" {dur:.2f}s" if isinstance(dur, (int, float)) else ""
        if name == "bench.point":
            attrs = record.get("attrs", {})
            return (f"  point {attrs.get('task', '?')} "
                    f"{record.get('status', '?')}{dur_text}")
        return f"  span {name} {record.get('status', '?')}{dur_text}"
    if kind == "event":
        return f"  event {record.get('name')} {record.get('attrs', {})}"
    if kind == "close":
        return (f"ledger closed: status={record.get('status')} "
                f"spans={record.get('spans')} "
                f"events={record.get('events')}")
    return None
