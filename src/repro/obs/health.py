"""Worker-pool health: heartbeats, stall detection, per-worker metrics.

The sweep runner (``repro.bench.sweep``) is the fleet's execution plane;
this module is its observability plane.  A :class:`PoolHealth` instance
is threaded through the runner's lifecycle hooks and

* keeps per-worker counters and pool gauges in a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (the same registry
  machinery the simulator's protocol metrics use, so one exporter
  renders both);
* appends :class:`~repro.telemetry.sampler.SimTimeSampler`-style
  snapshot rows on a wall-clock heartbeat -- what did the pool look
  like over time: busy workers, queue depth, completions, failures;
* detects *stalls*: a worker busy on one task for longer than
  ``stall_after_s`` without producing a result gets one ``pool.stall``
  warning event (distinct from the hard per-task timeout, which kills
  the worker) on the ambient run ledger.

Everything here measures the tooling in wall-clock seconds; nothing
reads or perturbs simulator state, so sweep results are bit-identical
with the health plane on or off.
"""

from __future__ import annotations

import time
from typing import Optional

from ..telemetry.metrics import MetricsRegistry
from . import ledger as _ledger

#: histogram bucket bounds for wall-clock seconds (10 ms .. 5 min)
WALL_S_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 300.0)


class PoolHealth:
    """Counters, gauges, heartbeats and stall warnings for one sweep."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        heartbeat_s: float = 1.0,
        stall_after_s: float = 30.0,
        max_snapshots: int = 100_000,
        clock=time.perf_counter,
    ) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=True)
        self.heartbeat_s = heartbeat_s
        self.stall_after_s = stall_after_s
        self.max_snapshots = max_snapshots
        self.snapshots: list[dict] = []
        self.dropped = 0
        self._clock = clock
        self._t0 = clock()
        self._last_beat: Optional[float] = None
        #: worker id -> (task name, assignment clock time)
        self._busy: dict[int, tuple[str, float]] = {}
        #: worker ids already warned for their current task
        self._stalled: set[int] = set()
        reg = self.registry
        self._c_tasks = reg.counter(
            "pool_tasks_total", "tasks completed by the pool",
            labels=("worker",))
        self._c_failures = reg.counter(
            "pool_task_failures_total", "tasks that raised or died")
        self._c_timeouts = reg.counter(
            "pool_timeouts_total", "tasks killed at their deadline")
        self._c_respawns = reg.counter(
            "pool_respawns_total", "workers replaced after death/kill")
        self._c_deaths = reg.counter(
            "pool_worker_deaths_total", "workers that died mid-task")
        self._c_stalls = reg.counter(
            "pool_stalls_total", "stall warnings issued")
        self._g_workers = reg.gauge(
            "pool_workers", "live pool workers")
        self._g_busy = reg.gauge(
            "pool_workers_busy", "workers currently running a task")
        self._g_pending = reg.gauge(
            "pool_queue_depth", "tasks not yet assigned")
        self._h_queue_wait = reg.histogram(
            "pool_queue_wait_s", "wall seconds a task waited unassigned",
            unit="s", buckets=WALL_S_BUCKETS)
        self._h_task_wall = reg.histogram(
            "pool_task_wall_s", "wall seconds a task ran",
            unit="s", buckets=WALL_S_BUCKETS)

    # -- lifecycle hooks (called by the sweep runner) -----------------------

    def pool_started(self, workers: int) -> None:
        self._g_workers.set(workers)

    def task_assigned(self, worker: int, task_name: str,
                      queue_wait_s: float) -> None:
        self._busy[worker] = (task_name, self._clock())
        self._stalled.discard(worker)
        self._h_queue_wait.observe(queue_wait_s)
        self._g_busy.set(len(self._busy))

    def task_finished(self, worker, task_name: str, ok: bool,
                      wall_s: float, timed_out: bool = False) -> None:
        # timeouts are counted by task_timed_out (the kill decision),
        # not here, so a timed-out task is not double-counted
        if isinstance(worker, int):
            self._busy.pop(worker, None)
            self._stalled.discard(worker)
        self._c_tasks.labels(str(worker)).inc()
        self._h_task_wall.observe(wall_s)
        if not ok:
            self._c_failures.inc()
        self._g_busy.set(len(self._busy))

    def worker_died(self, worker: int, task_name: str,
                    exitcode=None) -> None:
        self._busy.pop(worker, None)
        self._stalled.discard(worker)
        self._c_deaths.inc()
        _ledger.event("pool.worker_death", worker=worker,
                      task=task_name, exitcode=exitcode)

    def worker_respawned(self, worker: int) -> None:
        self._c_respawns.inc()
        _ledger.event("pool.respawn", worker=worker)

    def task_timed_out(self, worker: int, task_name: str,
                       timeout_s: float) -> None:
        self._c_timeouts.inc()
        _ledger.event("pool.timeout", worker=worker, task=task_name,
                      timeout_s=timeout_s)

    # -- heartbeats and stalls ----------------------------------------------

    def heartbeat(self, pending: int, workers: int,
                  force: bool = False) -> Optional[dict]:
        """Throttled snapshot + stall sweep; call from the poll loop.

        Returns the snapshot row when one was taken, else ``None``.
        """
        now = self._clock()
        if not force and self._last_beat is not None \
                and now - self._last_beat < self.heartbeat_s:
            self._check_stalls(now)
            return None
        self._last_beat = now
        self._g_workers.set(workers)
        self._g_pending.set(pending)
        self._g_busy.set(len(self._busy))
        self._check_stalls(now)
        row = self.snapshot(pending=pending, workers=workers)
        if len(self.snapshots) >= self.max_snapshots:
            self.dropped += 1
        else:
            self.snapshots.append(row)
        _ledger.tick(
            "pool.heartbeat",
            busy=row["busy"], pending=row["pending"],
            workers=row["workers"], tasks_done=row["tasks_done"],
        )
        return row

    def _check_stalls(self, now: float) -> None:
        for worker, (task_name, since) in self._busy.items():
            if worker in self._stalled:
                continue
            busy_s = now - since
            if busy_s > self.stall_after_s:
                self._stalled.add(worker)
                self._c_stalls.inc()
                _ledger.event(
                    "pool.stall", worker=worker, task=task_name,
                    wall={"busy_s": round(busy_s, 3)},
                )

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, pending: int = 0, workers: int = 0) -> dict:
        """One SimTimeSampler-style row of current pool state."""
        totals = self.registry.totals()
        return {
            "record": "pool_sample",
            "t_s": round(self._clock() - self._t0, 6),
            "workers": workers,
            "busy": len(self._busy),
            "pending": pending,
            "tasks_done": int(totals.get("pool_tasks_total", 0)),
            "failures": int(totals.get("pool_task_failures_total", 0)),
            "timeouts": int(totals.get("pool_timeouts_total", 0)),
            "respawns": int(totals.get("pool_respawns_total", 0)),
            "deaths": int(totals.get("pool_worker_deaths_total", 0)),
            "stalls": int(totals.get("pool_stalls_total", 0)),
        }

    def summary(self) -> dict:
        """Deterministic totals for ledger/bench embedding (wall-clock
        histograms excluded; counts only)."""
        totals = self.registry.totals()
        return {
            "tasks": int(totals.get("pool_tasks_total", 0)),
            "failures": int(totals.get("pool_task_failures_total", 0)),
            "timeouts": int(totals.get("pool_timeouts_total", 0)),
            "respawns": int(totals.get("pool_respawns_total", 0)),
            "deaths": int(totals.get("pool_worker_deaths_total", 0)),
            "stalls": int(totals.get("pool_stalls_total", 0)),
        }

    def to_jsonl(self) -> str:
        """Snapshot rows as JSON Lines (mirrors ``SimTimeSampler``)."""
        import json

        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.snapshots
        )
