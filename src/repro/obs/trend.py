"""Perf-trajectory tracking: compare BENCH documents across runs.

``repro obs trend A B [C ...]`` (and ``repro bench --compare BASELINE``)
consume a series of benchmark outputs -- combined
``repro-bench-snapshot/1`` files, single ``repro-bench/1`` documents, or
results directories of ``BENCH_*.json`` -- and emit a ``repro-trend/1``
verdict document comparing each consecutive pair:

* **determinism drift** -- the sim-time-derived fields (simulated time,
  counters, derived tables) are compared for *equality* after
  ``strip_wall_clock``: the simulator is seeded and byte-deterministic,
  so any difference is a behaviour change, not noise.  Sim-time fields
  are thereby excluded from the noise-aware deltas below.
* **wall-clock regressions** -- ``wall_clock_s`` per target, ``wall_s``
  and events/second (``events_executed / wall_s``) per point, compared
  with a noise-aware tolerance: a regression is flagged only when the
  baseline ran for at least ``min_wall_s`` (tiny points are all noise)
  and the ratio exceeds ``wall_tolerance``.  Committed snapshots have
  their wall fields stripped, so comparisons against them skip this
  layer and check drift only.

The gate passes (exit 0) when no pair drifted or regressed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..bench.schema import SCHEMA as BENCH_SCHEMA
from ..bench.schema import strip_wall_clock
from ..bench.snapshot import SNAPSHOT_SCHEMA

#: schema tag of the trend verdict document
TREND_SCHEMA = "repro-trend/1"

#: a current/baseline wall ratio above this is a regression (and below
#: its inverse, an improvement); chosen loose enough that CI runner
#: noise passes and a 2x slowdown reliably fails
DEFAULT_WALL_TOLERANCE = 1.5

#: baseline walls shorter than this are pure noise: never judged
DEFAULT_MIN_WALL_S = 0.05

#: cap on reported drift paths per target
_MAX_DIFFS = 8


class TrendError(ValueError):
    """Unreadable or non-comparable trend inputs."""


# -- input normalization -------------------------------------------------------

def load_perf_doc(path: Union[str, Path]) -> dict:
    """Normalize one trend input to ``{"source", "scale", "targets"}``.

    Accepts a ``repro-bench-snapshot/1`` file, a single ``repro-bench/1``
    document, or a directory containing ``BENCH_*.json`` files.
    """
    path = Path(path)
    if path.is_dir():
        targets: dict = {}
        scale = None
        for file in sorted(path.glob("BENCH_*.json")):
            doc = _load_json(file)
            if doc.get("schema") != BENCH_SCHEMA:
                continue
            targets[doc["target"]] = doc
            scale = doc.get("scale", scale)
        if not targets:
            raise TrendError(f"{path}: no BENCH_*.json documents inside")
        return {"source": str(path), "scale": scale, "targets": targets}
    doc = _load_json(path)
    if not isinstance(doc, dict):
        raise TrendError(f"{path}: expected a JSON object")
    schema = doc.get("schema")
    if schema == SNAPSHOT_SCHEMA:
        return {
            "source": str(path),
            "scale": doc.get("scale"),
            "targets": dict(doc.get("targets", {})),
        }
    if schema == BENCH_SCHEMA:
        return {
            "source": str(path),
            "scale": doc.get("scale"),
            "targets": {doc["target"]: doc},
        }
    raise TrendError(
        f"{path}: expected schema {SNAPSHOT_SCHEMA!r} or "
        f"{BENCH_SCHEMA!r}, got {schema!r}"
    )


def _load_json(path: Path):
    try:
        text = path.read_text()
    except OSError as exc:
        raise TrendError(
            f"cannot read {path}: {exc.strerror or exc}"
        ) from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise TrendError(f"{path}: not JSON ({exc.msg})") from None


# -- deep equality with paths --------------------------------------------------

def _diff_paths(a, b, path: str, out: list[str]) -> None:
    if len(out) >= _MAX_DIFFS:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: added")
            elif key not in b:
                out.append(f"{path}.{key}: removed")
            else:
                _diff_paths(a[key], b[key], f"{path}.{key}", out)
            if len(out) >= _MAX_DIFFS:
                return
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} -> {len(b)}")
            return
        for i, (ai, bi) in enumerate(zip(a, b)):
            _diff_paths(ai, bi, f"{path}[{i}]", out)
            if len(out) >= _MAX_DIFFS:
                return
    elif a != b:
        out.append(f"{path}: {a!r} -> {b!r}")


# -- pairwise comparison -------------------------------------------------------

def _wall_verdict(base: Optional[float], cur: Optional[float],
                  tolerance: float, min_wall_s: float) -> dict:
    """Noise-aware verdict on one wall-clock figure pair."""
    if not isinstance(base, (int, float)) \
            or not isinstance(cur, (int, float)):
        return {"verdict": "skipped"}
    if base < min_wall_s:
        return {"baseline_s": base, "current_s": cur,
                "verdict": "below_noise_floor"}
    ratio = cur / base if base else float("inf")
    verdict = "ok"
    if ratio > tolerance:
        verdict = "regression"
    elif ratio < 1.0 / tolerance:
        verdict = "improvement"
    return {"baseline_s": base, "current_s": cur,
            "ratio": round(ratio, 4), "verdict": verdict}


def _events_per_sec(point: dict) -> Optional[float]:
    metrics = point.get("metrics")
    wall = point.get("wall_s")
    if not isinstance(metrics, dict) or not isinstance(
            wall, (int, float)) or wall <= 0:
        return None
    events = metrics.get("events_executed")
    if not isinstance(events, (int, float)) or events <= 0:
        return None
    return events / wall


def compare_targets(
    baseline: dict,
    current: dict,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> dict:
    """Compare two normalized perf docs (see :func:`load_perf_doc`)."""
    if baseline.get("scale") and current.get("scale") \
            and baseline["scale"] != current["scale"]:
        raise TrendError(
            f"cannot compare scales: baseline is "
            f"{baseline['scale']!r}, current is {current['scale']!r}"
        )
    base_targets = baseline["targets"]
    cur_targets = current["targets"]
    shared = sorted(set(base_targets) & set(cur_targets))
    missing = sorted(set(base_targets) - set(cur_targets))
    added = sorted(set(cur_targets) - set(base_targets))
    targets: dict = {}
    drifted: list[str] = []
    regressions: list[str] = []
    for name in shared:
        base_doc = base_targets[name]
        cur_doc = cur_targets[name]
        diffs: list[str] = []
        _diff_paths(strip_wall_clock(base_doc),
                    strip_wall_clock(cur_doc), name, diffs)
        if diffs:
            drifted.append(name)
        wall = _wall_verdict(base_doc.get("wall_clock_s"),
                             cur_doc.get("wall_clock_s"),
                             wall_tolerance, min_wall_s)
        if wall["verdict"] == "regression":
            regressions.append(f"{name}.wall_clock_s")
        base_points = {p.get("name"): p
                       for p in base_doc.get("points", [])
                       if isinstance(p, dict)}
        points: dict = {}
        for point in cur_doc.get("points", []):
            if not isinstance(point, dict):
                continue
            pname = point.get("name")
            base_point = base_points.get(pname)
            if base_point is None:
                continue
            p_wall = _wall_verdict(base_point.get("wall_s"),
                                   point.get("wall_s"),
                                   wall_tolerance, min_wall_s)
            entry: dict = {"wall": p_wall}
            if p_wall["verdict"] == "regression":
                regressions.append(f"{name}::{pname}.wall_s")
            base_eps = _events_per_sec(base_point)
            cur_eps = _events_per_sec(point)
            if base_eps is not None and cur_eps is not None \
                    and isinstance(base_point.get("wall_s"),
                                   (int, float)) \
                    and base_point["wall_s"] >= min_wall_s:
                ratio = base_eps / cur_eps if cur_eps else float("inf")
                eps_verdict = "ok"
                if ratio > wall_tolerance:
                    eps_verdict = "regression"
                    regressions.append(f"{name}::{pname}.events_per_s")
                elif ratio < 1.0 / wall_tolerance:
                    eps_verdict = "improvement"
                entry["events_per_s"] = {
                    "baseline": round(base_eps, 1),
                    "current": round(cur_eps, 1),
                    "slowdown": round(ratio, 4),
                    "verdict": eps_verdict,
                }
            points[pname] = entry
        targets[name] = {
            "drift": diffs,
            "wall": wall,
            "points": points,
        }
    ok = not drifted and not regressions and not missing
    return {
        "schema": TREND_SCHEMA,
        "baseline": baseline.get("source"),
        "current": current.get("source"),
        "scale": current.get("scale") or baseline.get("scale"),
        "wall_tolerance": wall_tolerance,
        "min_wall_s": min_wall_s,
        "targets": targets,
        "missing_targets": missing,
        "added_targets": added,
        "drifted": drifted,
        "regressions": regressions,
        "ok": ok,
    }


def trend_series(
    paths: list,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> dict:
    """Compare each consecutive pair in a series of trend inputs."""
    if len(paths) < 2:
        raise TrendError("trend needs at least two documents to compare")
    docs = [load_perf_doc(p) for p in paths]
    steps = [
        compare_targets(docs[i], docs[i + 1],
                        wall_tolerance=wall_tolerance,
                        min_wall_s=min_wall_s)
        for i in range(len(docs) - 1)
    ]
    return {
        "schema": TREND_SCHEMA,
        "series": [d["source"] for d in docs],
        "steps": steps,
        "ok": all(step["ok"] for step in steps),
    }


def _history_step(
    base: dict,
    cur: dict,
    wall_tolerance: float,
    min_wall_s: float,
) -> dict:
    """One consecutive-pair comparison over ``repro-run/1`` summaries.

    The history store keeps content *hashes* of wall-stripped BENCH
    docs rather than the docs themselves, so drift here is hash
    inequality (any difference is a behaviour change -- same contract
    as the full diff, less detail).  Wall figures come from the
    summary's quarantined ``wall.bench`` section.
    """
    base_targets = base.get("bench", {}).get("targets", {})
    cur_targets = cur.get("bench", {}).get("targets", {})
    base_wall = base.get("wall", {}).get("bench", {})
    cur_wall = cur.get("wall", {}).get("bench", {})
    shared = sorted(set(base_targets) & set(cur_targets))
    missing = sorted(set(base_targets) - set(cur_targets))
    added = sorted(set(cur_targets) - set(base_targets))
    targets: dict = {}
    drifted: list[str] = []
    regressions: list[str] = []
    for name in shared:
        diffs: list[str] = []
        if base_targets[name].get("sha256") \
                != cur_targets[name].get("sha256"):
            diffs.append(
                f"{name}.sha256: {base_targets[name].get('sha256')!r} "
                f"-> {cur_targets[name].get('sha256')!r}"
            )
            drifted.append(name)
        wall = _wall_verdict(
            base_wall.get(name, {}).get("wall_clock_s"),
            cur_wall.get(name, {}).get("wall_clock_s"),
            wall_tolerance, min_wall_s)
        if wall["verdict"] == "regression":
            regressions.append(f"{name}.wall_clock_s")
        base_points = base_wall.get(name, {}).get("points", {})
        points: dict = {}
        for pname, row in cur_wall.get(name, {}).get(
                "points", {}).items():
            base_row = base_points.get(pname)
            if not isinstance(base_row, dict):
                continue
            p_wall = _wall_verdict(base_row.get("wall_s"),
                                   row.get("wall_s"),
                                   wall_tolerance, min_wall_s)
            entry: dict = {"wall": p_wall}
            if p_wall["verdict"] == "regression":
                regressions.append(f"{name}::{pname}.wall_s")
            base_eps = base_row.get("events_per_s")
            cur_eps = row.get("events_per_s")
            if isinstance(base_eps, (int, float)) \
                    and isinstance(cur_eps, (int, float)) \
                    and isinstance(base_row.get("wall_s"),
                                   (int, float)) \
                    and base_row["wall_s"] >= min_wall_s:
                ratio = base_eps / cur_eps if cur_eps else float("inf")
                eps_verdict = "ok"
                if ratio > wall_tolerance:
                    eps_verdict = "regression"
                    regressions.append(f"{name}::{pname}.events_per_s")
                elif ratio < 1.0 / wall_tolerance:
                    eps_verdict = "improvement"
                entry["events_per_s"] = {
                    "baseline": round(base_eps, 1),
                    "current": round(cur_eps, 1),
                    "slowdown": round(ratio, 4),
                    "verdict": eps_verdict,
                }
            points[pname] = entry
        targets[name] = {"drift": diffs, "wall": wall,
                         "points": points}
    ok = not drifted and not regressions and not missing
    return {
        "schema": TREND_SCHEMA,
        "baseline": f"run {base.get('run')}",
        "current": f"run {cur.get('run')}",
        "scale": cur.get("extras", {}).get("scale")
        or base.get("extras", {}).get("scale"),
        "wall_tolerance": wall_tolerance,
        "min_wall_s": min_wall_s,
        "targets": targets,
        "missing_targets": missing,
        "added_targets": added,
        "drifted": drifted,
        "regressions": regressions,
        "ok": ok,
    }


def trend_history(
    summaries: list,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> dict:
    """Series gating over history-store ``repro-run/1`` summaries.

    Only bench-carrying summaries participate (a ``repro run`` between
    two ``repro bench`` runs has nothing to compare); at least two are
    required.  Same verdict document shape as :func:`trend_series`.
    """
    docs = [s for s in summaries
            if s.get("bench", {}).get("targets")]
    if len(docs) < 2:
        raise TrendError(
            "history trend needs at least two bench-carrying run "
            f"summaries (have {len(docs)})"
        )
    steps = [
        _history_step(docs[i], docs[i + 1],
                      wall_tolerance, min_wall_s)
        for i in range(len(docs) - 1)
    ]
    return {
        "schema": TREND_SCHEMA,
        "series": [f"run {d.get('run')}" for d in docs],
        "steps": steps,
        "ok": all(step["ok"] for step in steps),
    }


# -- rendering -----------------------------------------------------------------

def render_trend(doc: dict) -> str:
    """Human-readable report for one comparison or a whole series."""
    steps = doc.get("steps", [doc])
    lines: list[str] = []
    for step in steps:
        lines.append(
            f"{step.get('baseline')} -> {step.get('current')} "
            f"[scale={step.get('scale')}]"
        )
        for name in step.get("missing_targets", []):
            lines.append(f"  {name}: MISSING from the newer run")
        for name, target in step.get("targets", {}).items():
            wall = target["wall"]
            if "ratio" in wall:
                wall_text = (
                    f"wall {wall['baseline_s']:.2f}s -> "
                    f"{wall['current_s']:.2f}s "
                    f"(x{wall['ratio']:.2f}, {wall['verdict']})"
                )
            else:
                wall_text = f"wall {wall['verdict']}"
            drift_text = (
                f"{len(target['drift'])} drifted field(s)"
                if target["drift"] else "deterministic fields identical"
            )
            lines.append(f"  {name}: {drift_text}; {wall_text}")
            for path in target["drift"]:
                lines.append(f"    drift: {path}")
            for pname, entry in target["points"].items():
                eps = entry.get("events_per_s")
                p_wall = entry["wall"]
                if p_wall.get("verdict") == "regression" \
                        or (eps and eps["verdict"] == "regression"):
                    detail = (
                        f"    {pname}: wall "
                        f"{p_wall.get('baseline_s')}s -> "
                        f"{p_wall.get('current_s')}s"
                    )
                    if eps:
                        detail += (
                            f", {eps['baseline']:.0f} -> "
                            f"{eps['current']:.0f} events/s"
                        )
                    lines.append(detail + "  REGRESSION")
        verdict = "ok" if step["ok"] else (
            "REGRESSION" if step["regressions"] else "DRIFT"
        )
        summary = (
            f"  => {verdict}: {len(step['drifted'])} drifted "
            f"target(s), {len(step['regressions'])} wall "
            f"regression(s)"
        )
        lines.append(summary)
    return "\n".join(lines)
