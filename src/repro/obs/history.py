"""The cross-run history store: one ``repro-run/1`` summary per run.

The ledger (``obs.ledger``) remembers one run in depth; this module
remembers *every* run in breadth.  Each CLI invocation appends a single
small JSON summary -- what was asked (verb, argv, an args fingerprint),
what the simulator did (seed, sim counters), and content hashes of the
run's durable documents (wall-stripped BENCH docs, the wall-stripped
ledger) -- into ``.repro/history/`` as ``run-000001.json``,
``run-000002.json``, ...  ``repro obs history list|show|trend`` queries
the store, and ``repro obs trend --history N`` turns the last N
bench-carrying summaries into a series perf gate.

Determinism contract, same as everywhere else in the repo: every
wall-clock-dependent figure (timestamps, durations, per-point wall
seconds, events/sec denominators) lives under the summary's top-level
``wall`` key and nowhere else.  :func:`strip_wall_summary` drops that
key; two runs of the same verb with the same args and seed then
produce byte-identical summaries, which is what the round-trip tests
and the CI history step assert.

Summary shape::

    {"schema": "repro-run/1",
     "run": 3,                      # store index (file run-000003.json)
     "verb": "bench",
     "argv": ["bench", "--scale", "smoke", ...],
     "args_sha256": "...",          # fingerprint of {"argv","verb"}
     "status": "ok",                # or "error"
     "exit_code": 0,
     "extras": {"scale": "smoke", "seed": 42, ...},
     "sim": {"sim_time_ns": ..., "faults": ..., ...},
     "bench": {"targets": {"fig1_gauss": {"points": 3,
                                          "sha256": "..."}}},
     "ledger_sha256": "...",        # hash of the wall-stripped ledger
     "wall": {"t0_s": ..., "dur_s": ...,
              "bench": {"fig1_gauss": {"wall_clock_s": ...,
                                       "points": {"p=4": {
                                           "wall_s": ...,
                                           "events_per_s": ...}}}}}}

Absent sections (a run with no bench, no ledger, no sim) are simply
omitted, keeping the fingerprint honest about what the run produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from typing import Any, Optional

#: schema tag of one run summary
HISTORY_SCHEMA = "repro-run/1"

#: default store location, relative to the working directory
DEFAULT_HISTORY_DIR = os.path.join(".repro", "history")

#: environment variable naming the store (same pattern as REPRO_LEDGER)
HISTORY_ENV = "REPRO_HISTORY"

_RUN_FILE_RE = re.compile(r"^run-(\d{6})\.json$")

#: the wall-quarantine key (mirrors ledger.WALL_KEY)
WALL_KEY = "wall"


class HistoryError(ValueError):
    """An unusable history store or summary."""


def _dumps(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def sha256_doc(doc: Any) -> str:
    """Content hash of a JSON-serializable document (canonical form)."""
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True,
                   separators=(",", ":")).encode()).hexdigest()


def history_root(path: Optional[str] = None) -> str:
    """Resolve the store directory: explicit arg beats ``REPRO_HISTORY``
    beats the ``.repro/history`` default."""
    if path:
        return path
    return os.environ.get(HISTORY_ENV) or DEFAULT_HISTORY_DIR


def list_runs(root: str) -> list[int]:
    """Ascending run indices present in the store."""
    if not os.path.isdir(root):
        raise HistoryError(f"no history store at {root}")
    runs = []
    for name in os.listdir(root):
        match = _RUN_FILE_RE.match(name)
        if match:
            runs.append(int(match.group(1)))
    return sorted(runs)


def run_path(root: str, run: int) -> str:
    return os.path.join(root, f"run-{run:06d}.json")


def append_summary(root: str, summary: dict) -> str:
    """Write ``summary`` as the next run in the store; returns its path.

    The ``run`` field is stamped here (next free index) so callers
    build summaries without knowing the store state.
    """
    os.makedirs(root, exist_ok=True)
    try:
        runs = list_runs(root)
    except HistoryError:
        runs = []
    index = (runs[-1] + 1) if runs else 1
    doc = dict(summary)
    doc["run"] = index
    path = run_path(root, index)
    with open(path, "w") as handle:
        handle.write(_dumps(doc) + "\n")
    return path


def load_summary(root: str, run: int) -> dict:
    """One summary by index; structural problems raise HistoryError."""
    path = run_path(root, run)
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise HistoryError(f"no run {run} in {root}")
    except (OSError, json.JSONDecodeError) as exc:
        raise HistoryError(f"unreadable summary {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("schema") != HISTORY_SCHEMA:
        raise HistoryError(
            f"{path} is not a {HISTORY_SCHEMA} summary"
        )
    return doc


def load_history(root: str, last: Optional[int] = None) -> list[dict]:
    """The store's summaries in run order, optionally only the last N
    (``last`` of 0 or None means every run)."""
    runs = list_runs(root)
    if last:
        runs = runs[-last:]
    return [load_summary(root, run) for run in runs]


def strip_wall_summary(summary: dict) -> dict:
    """The rerun-comparable view: the ``wall`` key dropped."""
    return {k: v for k, v in summary.items() if k != WALL_KEY}


def summary_line(summary: dict) -> str:
    """One ``repro obs history list`` row."""
    parts = [
        f"run {summary.get('run', '?'):>4}",
        f"{summary.get('verb', '?'):<8}",
        f"{summary.get('status', '?'):<5}",
    ]
    bench = summary.get("bench", {}).get("targets", {})
    if bench:
        parts.append(f"bench[{','.join(sorted(bench))}]")
    sim = summary.get("sim")
    if sim and "sim_time_ns" in sim:
        parts.append(f"sim={sim['sim_time_ns'] / 1e6:.3f}ms")
    dur = summary.get(WALL_KEY, {}).get("dur_s")
    if dur is not None:
        parts.append(f"wall={dur:.2f}s")
    return "  ".join(parts)


class RunRecorder:
    """Accumulates one run's summary; ``finish()`` appends it.

    The CLI dispatcher creates one recorder per verb when ``--history``
    (or ``REPRO_HISTORY``) is active and exposes it ambiently via
    :func:`set_recorder`; verbs drop facts in as they learn them::

        rec = get_recorder()
        rec.note(workload="sec42", seed=42)
        rec.note_sim(sim_time_ns=..., faults=...)
        rec.note_bench("fig1_gauss", bench_doc)

    Everything noted through :meth:`note_wall` (and the bench wall
    figures split out by :meth:`note_bench`) lands under the summary's
    ``wall`` key; everything else must be deterministic.
    """

    def __init__(self, root: str, verb: str, argv: list[str]):
        self.root = root
        self.verb = verb
        self.argv = list(argv)
        self._extras: dict[str, Any] = {}
        self._sim: dict[str, Any] = {}
        self._bench: dict[str, dict] = {}
        self._ledger_sha: Optional[str] = None
        self._wall: dict[str, Any] = {"t0_s": round(time.time(), 3)}
        self._t0 = time.monotonic()
        self._path: Optional[str] = None

    def note(self, **extras: Any) -> None:
        """Deterministic run facts (seed, scale, workload, ...)."""
        self._extras.update(extras)

    def note_sim(self, **counters: Any) -> None:
        """Simulated-time results: sim_time_ns plus protocol counters."""
        self._sim.update(counters)

    def note_wall(self, **wall: Any) -> None:
        """Wall-clock facts; quarantined under the ``wall`` key."""
        self._wall.update(wall)

    def note_bench(self, name: str, doc: dict) -> None:
        """One bench target's ``repro-bench/1`` doc: hash the
        wall-stripped doc, stash the wall figures under ``wall``."""
        from ..bench.schema import strip_wall_clock

        stripped = strip_wall_clock(doc)
        self._bench[name] = {
            "sha256": sha256_doc(stripped),
            "points": len(doc.get("points", [])),
        }
        wall_points = {}
        for point in doc.get("points", []):
            row: dict[str, Any] = {}
            if "wall_s" in point:
                row["wall_s"] = point["wall_s"]
                metrics = point.get("metrics", {})
                executed = metrics.get("events_executed")
                if executed and point["wall_s"] > 0:
                    row["events_per_s"] = round(
                        executed / point["wall_s"], 3)
            if row:
                wall_points[point.get("name", "?")] = row
        bench_wall: dict[str, Any] = {}
        if "wall_clock_s" in doc:
            bench_wall["wall_clock_s"] = doc["wall_clock_s"]
        if wall_points:
            bench_wall["points"] = wall_points
        if bench_wall:
            self._wall.setdefault("bench", {})[name] = bench_wall

    def note_ledger(self, records: list[dict]) -> None:
        """Hash the run's wall-stripped ledger into the summary."""
        from .ledger import strip_wall_ledger

        self._ledger_sha = sha256_doc(strip_wall_ledger(records))

    def summary(self, status: str, exit_code: int) -> dict:
        doc: dict[str, Any] = {
            "schema": HISTORY_SCHEMA,
            "verb": self.verb,
            "argv": self.argv,
            "args_sha256": sha256_doc(
                {"argv": self.argv, "verb": self.verb}),
            "status": status,
            "exit_code": exit_code,
        }
        if self._extras:
            doc["extras"] = dict(sorted(self._extras.items()))
        if self._sim:
            doc["sim"] = dict(sorted(self._sim.items()))
        if self._bench:
            doc["bench"] = {
                "targets": dict(sorted(self._bench.items()))}
        if self._ledger_sha:
            doc["ledger_sha256"] = self._ledger_sha
        wall = dict(self._wall)
        wall["dur_s"] = round(time.monotonic() - self._t0, 6)
        doc[WALL_KEY] = wall
        return doc

    def finish(self, status: str, exit_code: int) -> str:
        """Append the summary to the store; returns the written path.

        Idempotent: a second call returns the first path without
        writing again (the dispatcher's ``finally`` may race a verb
        that already finished explicitly).
        """
        if self._path is None:
            self._path = append_summary(
                self.root, self.summary(status, exit_code))
        return self._path


# -- ambient recorder (mirrors ledger.set_ledger/get_ledger) -------------------

_CURRENT: Optional[RunRecorder] = None


def set_recorder(recorder: Optional[RunRecorder]) -> None:
    """Install (or clear) the ambient run recorder."""
    global _CURRENT
    _CURRENT = recorder


def get_recorder() -> Optional[RunRecorder]:
    """The ambient recorder, or None when history is off."""
    return _CURRENT
