"""The coherence doctor: streaming anomaly detectors over one run.

Paper section 4.2 is a diagnosis story: the PLATINUM programmers
*noticed* a page that was invalidated right after every thaw, read the
per-page instrumentation, and named the disease -- false sharing.  The
profiler (``repro explain``) automates the attribution half of that
story; this module automates the *noticing*.  ``repro doctor`` runs a
catalog of detectors over the same :class:`~repro.profile.ProfileSource`
event stream (plus, optionally, sim-time sampler rows and worker-pool
health) and emits a deterministic ``repro-findings/1`` report:

``false_sharing``
    The section 4.2 signature: a page whose thaw is followed within the
    freeze window by a fresh invalidation (a re-freeze or an invalidate
    shootdown), matched on timestamps so a re-invalidation landing at
    the very thaw instant still counts.  Each thaw->invalidate round
    trip is one *ping-pong cycle*; cycling pages are diagnosed, ranked
    by the profiler's own attributed cost (then cycles, then faults),
    so on the sec42 anecdote the top finding mechanically names the
    same page ``repro explain`` ranks #1 (CI asserts this).
``shootdown_storm``
    The Mitosis-scale signature: a burst of TLB shootdowns dense enough
    to serialize the machine.  A sliding window over shootdown events
    finds the peak; the finding reports the peak rate and the page
    contributing most inside the peak window.
``frozen_thrash``
    A page freezing and thawing over and over: every cycle pays the
    freeze bookkeeping and forces remote references while frozen.
    Reports cycle count and the fraction of the run spent frozen.
``defrost_starvation``
    A frozen interval far longer than the defrost period ``t2``: the
    daemon is off, too slow, or the page is being re-frozen before the
    daemon reaches it -- remote references pile up meanwhile.
``pool_wall``
    The tooling's own pathology (stalls, timeouts, worker deaths,
    respawns) from a :class:`~repro.obs.health.PoolHealth` summary or a
    ``repro-events/1`` ledger.  Wall-clock data: these findings live
    under the report's ``wall`` key, quarantined exactly like every
    other wall-dependent field in the repo.

Determinism contract: everything outside the report's ``wall`` key
derives from simulated work only, so two doctor passes over the same
seed produce byte-identical reports (:func:`strip_wall_findings` drops
the ``wall`` layer for cross-run comparison).  Each finding is also
emitted as a ``doctor.finding`` event on the ambient run ledger.
"""

from __future__ import annotations

from typing import Optional, Sequence

from . import ledger as _ledger

#: schema tag of the doctor's report document
DOCTOR_SCHEMA = "repro-findings/1"

#: detector names in canonical (report) order
DETECTOR_ORDER = (
    "false_sharing",
    "shootdown_storm",
    "frozen_thrash",
    "defrost_starvation",
    "pool_wall",
)

#: the sim-event detectors (everything except the wall-quarantined one)
SIM_DETECTORS = DETECTOR_ORDER[:-1]

#: default detector thresholds; override via ``diagnose(config=...)``
DEFAULT_CONFIG = {
    # false_sharing: a thaw->invalidate gap under this window is one
    # ping-pong cycle; None means "use the run's t1 freeze window"
    "false_sharing_window_ns": None,
    "false_sharing_min_cycles": 1,
    # shootdown_storm: peak shootdowns within window_ns to diagnose
    "storm_window_ns": 1_000_000,
    "storm_min_count": 24,
    # frozen_thrash: freeze/thaw cycles to diagnose
    "thrash_min_cycles": 4,
    # defrost_starvation: frozen interval > factor * t2 is starvation
    "starvation_factor": 2.0,
}


class DoctorError(ValueError):
    """Unusable doctor input (unknown detector, nothing to examine)."""


def _window_ns(config: dict, params: dict) -> int:
    window = config["false_sharing_window_ns"]
    if window is None:
        window = params.get("t1_freeze_window") or 10e6
    return int(window)


def _severity(score: float, critical_at: float) -> str:
    return "critical" if score >= critical_at else "warning"


def _label(source, cpage: int) -> str:
    return source.page_labels.get(cpage, f"cpage{cpage}")


# -- the event-stream detectors ------------------------------------------------

def _attributed_ns(source) -> dict[int, int]:
    """Per-page attributed protocol cost, the profiler's own accounting
    (empty on sources the attribution cannot process)."""
    from ..profile.attribution import compute_attribution

    try:
        att = compute_attribution(source)
    except Exception:
        return {}
    return {c: cats.get("total", 0) for c, cats in att.per_page.items()}


def _detect_false_sharing(source, config: dict) -> list[dict]:
    window = _window_ns(config, source.params)
    min_cycles = config["false_sharing_min_cycles"]
    thaw_times: dict[int, list[int]] = {}
    inval_times: dict[int, list[int]] = {}
    thaws: dict[int, int] = {}
    freezes: dict[int, int] = {}
    faults: dict[int, int] = {}
    for event in source.events:
        cpage = event.get("cpage")
        if cpage is None:
            continue
        kind = event["kind"]
        if kind == "fault":
            faults[cpage] = faults.get(cpage, 0) + 1
        elif kind == "thaw":
            thaws[cpage] = thaws.get(cpage, 0) + 1
            thaw_times.setdefault(cpage, []).append(event["time"])
        elif kind == "freeze" or (
            kind == "shootdown"
            and event["detail"].get("directive") == "invalidate"
        ):
            if kind == "freeze":
                freezes[cpage] = freezes.get(cpage, 0) + 1
            inval_times.setdefault(cpage, []).append(event["time"])
    # Match each invalidation to the latest thaw at or before it.  "At":
    # the defrost thaw and the write fault that re-invalidates the page
    # can land on the same simulated instant, with the shootdown
    # serialized ahead of the thaw record -- timestamp order, not stream
    # order, is what the section 4.2 programmers eyeballed.
    cycles: dict[int, int] = {}
    gaps: dict[int, list[int]] = {}
    for cpage, invals in inval_times.items():
        page_thaws = thaw_times.get(cpage, [])
        ti = 0
        pending: Optional[int] = None
        for t in invals:
            while ti < len(page_thaws) and page_thaws[ti] <= t:
                pending = page_thaws[ti]  # a newer thaw supersedes
                ti += 1
            if pending is not None and t - pending <= window:
                cycles[cpage] = cycles.get(cpage, 0) + 1
                gaps.setdefault(cpage, []).append(t - pending)
                pending = None  # each thaw pays for one cycle
    attributed = _attributed_ns(source)
    findings = []
    suspects = sorted(
        (c for c, n in cycles.items() if n >= min_cycles),
        key=lambda c: (-attributed.get(c, 0), -cycles[c],
                       -faults.get(c, 0), c),
    )
    for rank, cpage in enumerate(suspects):
        n = cycles[cpage]
        page_gaps = gaps[cpage]
        mean_gap = sum(page_gaps) // len(page_gaps)
        label = _label(source, cpage)
        evidence = {
            "cycles": n,
            "mean_reinval_gap_ns": mean_gap,
            "max_reinval_gap_ns": max(page_gaps),
            "window_ns": window,
            "thaws": thaws.get(cpage, 0),
            "freezes": freezes.get(cpage, 0),
            "faults": faults.get(cpage, 0),
        }
        if cpage in attributed:
            evidence["attributed_ns"] = attributed[cpage]
        findings.append({
            "detector": "false_sharing",
            "severity": "critical" if rank == 0 or n >= 3
            else "warning",
            "cpage": cpage,
            "label": label,
            "summary": (
                f"cpage {cpage} ({label}): invalidated within "
                f"{mean_gap / 1e6:.3f} ms of thaw, {n} time(s) -- the "
                "section 4.2 ping-pong signature; consider remote-"
                "mapping this page"
            ),
            "evidence": evidence,
        })
    return findings


def _detect_shootdown_storm(source, config: dict) -> list[dict]:
    window = config["storm_window_ns"]
    min_count = config["storm_min_count"]
    shots = [(e["time"], e.get("cpage"))
             for e in source.events if e["kind"] == "shootdown"]
    if len(shots) < min_count:
        return []
    peak = 0
    peak_lo = 0
    lo = 0
    for hi in range(len(shots)):
        while shots[hi][0] - shots[lo][0] > window:
            lo += 1
        if hi - lo + 1 > peak:
            peak = hi - lo + 1
            peak_lo = lo
    if peak < min_count:
        return []
    in_peak = shots[peak_lo:peak_lo + peak]
    by_page: dict[int, int] = {}
    for _, cpage in in_peak:
        if cpage is not None:
            by_page[cpage] = by_page.get(cpage, 0) + 1
    top_page = min(
        (c for c in by_page), key=lambda c: (-by_page[c], c),
        default=None,
    )
    evidence = {
        "peak_count": peak,
        "window_ns": window,
        "peak_t0_ns": in_peak[0][0],
        "total_shootdowns": len(shots),
    }
    summary = (
        f"{peak} shootdowns within {window / 1e6:.1f} ms "
        f"(of {len(shots)} total)"
    )
    if top_page is not None:
        evidence["top_cpage"] = top_page
        evidence["top_cpage_count"] = by_page[top_page]
        summary += (
            f"; cpage {top_page} ({_label(source, top_page)}) "
            f"contributes {by_page[top_page]}"
        )
    return [{
        "detector": "shootdown_storm",
        "severity": _severity(peak, critical_at=2 * min_count),
        "cpage": top_page,
        "label": _label(source, top_page) if top_page is not None
        else None,
        "summary": summary,
        "evidence": evidence,
    }]


def _frozen_intervals(source) -> dict[int, list[int]]:
    """Per page, the lengths of its frozen intervals (an interval still
    open at the end of the run is closed at ``sim_time_ns``)."""
    open_at: dict[int, int] = {}
    intervals: dict[int, list[int]] = {}
    for event in source.events:
        cpage = event.get("cpage")
        if cpage is None:
            continue
        if event["kind"] == "freeze":
            open_at.setdefault(cpage, event["time"])
        elif event["kind"] == "thaw":
            since = open_at.pop(cpage, None)
            if since is not None:
                intervals.setdefault(cpage, []).append(
                    event["time"] - since)
    for cpage, since in open_at.items():
        intervals.setdefault(cpage, []).append(
            max(0, source.sim_time_ns - since))
    return intervals


def _detect_frozen_thrash(source, config: dict,
                          samples: Optional[list]) -> list[dict]:
    min_cycles = config["thrash_min_cycles"]
    intervals = _frozen_intervals(source)
    sim_time = max(1, source.sim_time_ns)
    findings = []
    suspects = sorted(
        (c for c, iv in intervals.items() if len(iv) >= min_cycles),
        key=lambda c: (-len(intervals[c]), c),
    )
    peak_frozen = max(
        (s.get("frozen_pages", 0) for s in samples or []), default=None
    )
    for cpage in suspects:
        iv = intervals[cpage]
        frozen_ns = sum(iv)
        label = _label(source, cpage)
        evidence = {
            "freeze_thaw_cycles": len(iv),
            "frozen_ns": frozen_ns,
            "frozen_fraction": round(frozen_ns / sim_time, 6),
        }
        if peak_frozen is not None:
            evidence["peak_frozen_pages"] = peak_frozen
        findings.append({
            "detector": "frozen_thrash",
            "severity": _severity(len(iv), critical_at=2 * min_cycles),
            "cpage": cpage,
            "label": label,
            "summary": (
                f"cpage {cpage} ({label}): {len(iv)} freeze/thaw "
                f"cycle(s), frozen {100.0 * frozen_ns / sim_time:.1f}% "
                "of the run"
            ),
            "evidence": evidence,
        })
    return findings


def _detect_defrost_starvation(source, config: dict) -> list[dict]:
    t2 = source.params.get("t2_defrost_period")
    if not t2:
        return []  # bare trace: no parameters to judge against
    factor = config["starvation_factor"]
    threshold = factor * t2
    findings = []
    intervals = _frozen_intervals(source)
    suspects = sorted(
        (c for c, iv in intervals.items() if max(iv) > threshold),
        key=lambda c: (-max(intervals[c]), c),
    )
    for cpage in suspects:
        longest = max(intervals[cpage])
        label = _label(source, cpage)
        findings.append({
            "detector": "defrost_starvation",
            "severity": _severity(longest, critical_at=2 * threshold),
            "cpage": cpage,
            "label": label,
            "summary": (
                f"cpage {cpage} ({label}): frozen for "
                f"{longest / 1e6:.3f} ms, {longest / t2:.1f}x the "
                f"defrost period -- is the daemon keeping up?"
            ),
            "evidence": {
                "longest_frozen_ns": int(longest),
                "t2_defrost_period_ns": int(t2),
                "threshold_ns": int(threshold),
                "intervals": len(intervals[cpage]),
            },
        })
    return findings


# -- the wall-quarantined pool detector ----------------------------------------

def _pool_summary_from_ledger(records: list[dict]) -> dict:
    """Reconstruct a PoolHealth-style summary from pool.* ledger
    events (the doctor's input when given a ledger file, not a live
    pool)."""
    summary = {"tasks": 0, "failures": 0, "timeouts": 0,
               "respawns": 0, "deaths": 0, "stalls": 0}
    names = {"pool.timeout": "timeouts", "pool.respawn": "respawns",
             "pool.worker_death": "deaths", "pool.stall": "stalls"}
    for record in records:
        if record.get("record") == "event":
            key = names.get(record.get("name"))
            if key:
                summary[key] += 1
        elif record.get("record") == "span" \
                and record.get("name") == "bench.point":
            summary["tasks"] += 1
            if record.get("status") != "ok":
                summary["failures"] += 1
        elif record.get("record") == "event" \
                and record.get("name") == "pool.summary":
            pass
    # a pool.summary event (written at sweep end) is authoritative
    for record in records:
        if record.get("record") == "event" \
                and record.get("name") == "pool.summary":
            attrs = record.get("attrs", {})
            for key in summary:
                if isinstance(attrs.get(key), int):
                    summary[key] = attrs[key]
    return summary


def _detect_pool_wall(pool_summary: dict) -> list[dict]:
    findings = []
    anomalies = (
        ("stalls", "worker(s) stalled past the stall threshold",
         "warning"),
        ("timeouts", "task(s) killed at their deadline", "critical"),
        ("deaths", "worker(s) died mid-task", "critical"),
        ("respawns", "worker respawn(s) after death/kill", "warning"),
        ("failures", "task(s) failed", "warning"),
    )
    for key, what, severity in anomalies:
        count = pool_summary.get(key, 0)
        if count:
            findings.append({
                "detector": "pool_wall",
                "severity": severity,
                "summary": f"{count} {what}",
                "wall": {key: count,
                         "tasks": pool_summary.get("tasks", 0)},
            })
    return findings


# -- the doctor ----------------------------------------------------------------

def validate_detectors(names: Sequence[str]) -> list[str]:
    """Normalize a detector selection; unknown names raise."""
    unknown = [n for n in names if n not in DETECTOR_ORDER]
    if unknown:
        raise DoctorError(
            f"unknown detector {unknown[0]!r} "
            f"(have: {', '.join(DETECTOR_ORDER)})"
        )
    # canonical order regardless of selection order
    return [n for n in DETECTOR_ORDER if n in set(names)]


def diagnose(
    source=None,
    samples: Optional[list] = None,
    pool_summary: Optional[dict] = None,
    ledger_records: Optional[list] = None,
    detectors: Optional[Sequence[str]] = None,
    config: Optional[dict] = None,
) -> dict:
    """Run the detector catalog and return a ``repro-findings/1`` doc.

    ``source`` is a :class:`~repro.profile.ProfileSource` (live run,
    bundle or bare trace); ``samples`` optional sim-time sampler rows;
    ``pool_summary`` / ``ledger_records`` feed the wall-quarantined
    pool detector.  Every finding is also emitted as a
    ``doctor.finding`` event on the ambient run ledger.
    """
    cfg = dict(DEFAULT_CONFIG)
    if config:
        unknown = set(config) - set(DEFAULT_CONFIG)
        if unknown:
            raise DoctorError(
                f"unknown doctor config key {sorted(unknown)[0]!r}"
            )
        cfg.update(config)
    selected = validate_detectors(detectors) if detectors is not None \
        else list(DETECTOR_ORDER)
    if ledger_records is not None and pool_summary is None:
        pool_summary = _pool_summary_from_ledger(ledger_records)
    ran: list[str] = []
    findings: list[dict] = []
    pool_findings: list[dict] = []
    for name in selected:
        if name == "pool_wall":
            if pool_summary is None:
                continue
            ran.append(name)
            pool_findings = _detect_pool_wall(pool_summary)
            continue
        if source is None:
            continue
        ran.append(name)
        if name == "false_sharing":
            findings += _detect_false_sharing(source, cfg)
        elif name == "shootdown_storm":
            findings += _detect_shootdown_storm(source, cfg)
        elif name == "frozen_thrash":
            findings += _detect_frozen_thrash(source, cfg, samples)
        elif name == "defrost_starvation":
            findings += _detect_defrost_starvation(source, cfg)
    if not ran:
        raise DoctorError(
            "nothing to examine: give a trace/bundle/workload for the "
            "sim detectors, or a ledger for pool_wall"
        )
    counts = {name: 0 for name in ran}
    for finding in findings:
        counts[finding["detector"]] += 1
    if "pool_wall" in counts:
        counts["pool_wall"] = len(pool_findings)
    report: dict = {
        "schema": DOCTOR_SCHEMA,
        "workload": getattr(source, "workload", "") if source else "",
        "sim_time_ns": getattr(source, "sim_time_ns", 0)
        if source else 0,
        "n_processors": getattr(source, "n_processors", 0)
        if source else 0,
        "detectors": ran,
        "config": {k: (int(v) if isinstance(v, float) and k.endswith(
            ("_ns",)) else v) for k, v in sorted(cfg.items())},
        "findings": findings,
        "counts": counts,
    }
    if pool_findings:
        report["wall"] = {"pool": pool_findings}
    for finding in findings:
        _ledger.event(
            "doctor.finding",
            detector=finding["detector"],
            severity=finding["severity"],
            cpage=finding.get("cpage"),
            summary=finding["summary"],
        )
    for finding in pool_findings:
        _ledger.event(
            "doctor.finding",
            detector="pool_wall",
            severity=finding["severity"],
            wall=dict(finding["wall"]),
        )
    return report


def strip_wall_findings(report: dict) -> dict:
    """The rerun-comparable view: the wall-quarantined pool findings
    dropped, everything else untouched (and already deterministic)."""
    return {k: v for k, v in report.items() if k != "wall"}


def render_findings(report: dict) -> str:
    """Human-readable doctor report."""
    head = f"doctor: {report.get('workload') or 'trace'}"
    sim_ms = report.get("sim_time_ns", 0) / 1e6
    if sim_ms:
        head += (f" -- {sim_ms:.3f} ms simulated on "
                 f"{report.get('n_processors')} processors")
    lines = [head]
    counts = report.get("counts", {})
    lines.append(
        "  detectors: " + ", ".join(
            f"{name}={counts.get(name, 0)}"
            for name in report.get("detectors", [])
        )
    )
    findings = report.get("findings", [])
    pool = report.get("wall", {}).get("pool", [])
    if not findings and not pool:
        lines.append("  no findings: the run looks healthy")
        return "\n".join(lines)
    for finding in findings:
        lines.append(
            f"  [{finding['severity']}] {finding['detector']}: "
            f"{finding['summary']}"
        )
        evidence = finding.get("evidence", {})
        if evidence:
            lines.append("      " + "  ".join(
                f"{k}={v}" for k, v in sorted(evidence.items())
            ))
    for finding in pool:
        lines.append(
            f"  [{finding['severity']}] pool_wall: "
            f"{finding['summary']}  (wall-clock)"
        )
    return "\n".join(lines)
