"""Fleet observability: the run ledger, pool health and perf trends.

Where ``repro.telemetry`` watches *one simulation from the inside*
(protocol metrics, trace sinks, sim-time sampling), this package watches
the *tooling fleet from the outside*:

``ledger``
    The ``repro-events/1`` span/event JSONL every CLI verb can emit
    (``repro --ledger PATH <verb>``): root span per verb, nested spans
    per pipeline stage, per-point spans from the bench worker pool with
    context propagated across the process boundary.
``health``
    Worker-pool heartbeats, per-worker counters/gauges on the shared
    metrics-registry machinery, and stall detection.
``wallprof``
    Opt-in cProfile capture of the slowest sweep points
    (``repro bench --profile-wall N``).
``trend``
    The perf trajectory: ``repro obs trend`` / ``repro bench
    --compare`` turn a series of ``BENCH_*.json`` documents into
    noise-aware ``repro-trend/1`` regression verdicts, wired as a CI
    gate.

See the "Run ledger & perf trajectory" section of
docs/OBSERVABILITY.md.
"""

from .health import PoolHealth, WALL_S_BUCKETS
from .ledger import (
    LEDGER_SCHEMA,
    NULL_SPAN,
    LedgerError,
    RunLedger,
    Span,
    event,
    get_ledger,
    iter_spans,
    read_ledger,
    set_ledger,
    span,
    strip_wall,
    strip_wall_ledger,
    summarize_ledger,
    validate_ledger,
)
from .trend import (
    DEFAULT_MIN_WALL_S,
    DEFAULT_WALL_TOLERANCE,
    TREND_SCHEMA,
    TrendError,
    compare_targets,
    load_perf_doc,
    render_trend,
    trend_series,
)
from .wallprof import format_wall_profile, profile_call, top_functions

__all__ = [
    "DEFAULT_MIN_WALL_S",
    "DEFAULT_WALL_TOLERANCE",
    "LEDGER_SCHEMA",
    "LedgerError",
    "NULL_SPAN",
    "PoolHealth",
    "RunLedger",
    "Span",
    "TREND_SCHEMA",
    "TrendError",
    "WALL_S_BUCKETS",
    "compare_targets",
    "event",
    "format_wall_profile",
    "get_ledger",
    "iter_spans",
    "load_perf_doc",
    "profile_call",
    "read_ledger",
    "render_trend",
    "set_ledger",
    "span",
    "strip_wall",
    "strip_wall_ledger",
    "summarize_ledger",
    "top_functions",
    "trend_series",
    "validate_ledger",
]
