"""Fleet observability: the run ledger, pool health and perf trends.

Where ``repro.telemetry`` watches *one simulation from the inside*
(protocol metrics, trace sinks, sim-time sampling), this package watches
the *tooling fleet from the outside*:

``ledger``
    The ``repro-events/1`` span/event JSONL every CLI verb can emit
    (``repro --ledger PATH <verb>``): root span per verb, nested spans
    per pipeline stage, per-point spans from the bench worker pool with
    context propagated across the process boundary.
``health``
    Worker-pool heartbeats, per-worker counters/gauges on the shared
    metrics-registry machinery, and stall detection.
``wallprof``
    Opt-in cProfile capture of the slowest sweep points
    (``repro bench --profile-wall N``).
``trend``
    The perf trajectory: ``repro obs trend`` / ``repro bench
    --compare`` turn a series of ``BENCH_*.json`` documents into
    noise-aware ``repro-trend/1`` regression verdicts, wired as a CI
    gate; ``repro obs trend --history N`` gates the last N runs from
    the history store.
``doctor``
    Streaming anomaly detectors (false sharing, shootdown storms,
    frozen-page thrash, defrost starvation, pool wall pathologies)
    over one run's profile events, sampler rows and pool health --
    the ``repro doctor`` verb and ``repro-findings/1`` reports.
``history``
    The cross-run memory: one byte-stable ``repro-run/1`` summary per
    CLI invocation appended to ``.repro/history/``, queried by
    ``repro obs history list|show|trend``.

See the "Run ledger & perf trajectory" section of
docs/OBSERVABILITY.md.
"""

from .doctor import (
    DETECTOR_ORDER,
    DOCTOR_SCHEMA,
    DoctorError,
    diagnose,
    render_findings,
    strip_wall_findings,
)
from .health import PoolHealth, WALL_S_BUCKETS
from .history import (
    HISTORY_SCHEMA,
    HistoryError,
    RunRecorder,
    append_summary,
    get_recorder,
    history_root,
    list_runs,
    load_history,
    load_summary,
    set_recorder,
    strip_wall_summary,
)
from .ledger import (
    LEDGER_SCHEMA,
    NULL_SPAN,
    LedgerError,
    RunLedger,
    Span,
    event,
    follow_ledger,
    get_ledger,
    iter_spans,
    read_ledger,
    render_follow_record,
    set_ledger,
    span,
    strip_wall,
    strip_wall_ledger,
    summarize_ledger,
    tick,
    validate_ledger,
)
from .trend import (
    DEFAULT_MIN_WALL_S,
    DEFAULT_WALL_TOLERANCE,
    TREND_SCHEMA,
    TrendError,
    compare_targets,
    load_perf_doc,
    render_trend,
    trend_history,
    trend_series,
)
from .wallprof import format_wall_profile, profile_call, top_functions

__all__ = [
    "DEFAULT_MIN_WALL_S",
    "DEFAULT_WALL_TOLERANCE",
    "DETECTOR_ORDER",
    "DOCTOR_SCHEMA",
    "DoctorError",
    "HISTORY_SCHEMA",
    "HistoryError",
    "LEDGER_SCHEMA",
    "LedgerError",
    "NULL_SPAN",
    "PoolHealth",
    "RunLedger",
    "RunRecorder",
    "Span",
    "TREND_SCHEMA",
    "TrendError",
    "WALL_S_BUCKETS",
    "append_summary",
    "compare_targets",
    "diagnose",
    "event",
    "follow_ledger",
    "format_wall_profile",
    "get_ledger",
    "get_recorder",
    "history_root",
    "iter_spans",
    "list_runs",
    "load_history",
    "load_perf_doc",
    "load_summary",
    "profile_call",
    "read_ledger",
    "render_findings",
    "render_follow_record",
    "render_trend",
    "set_ledger",
    "set_recorder",
    "span",
    "strip_wall",
    "strip_wall_findings",
    "strip_wall_ledger",
    "strip_wall_summary",
    "summarize_ledger",
    "tick",
    "top_functions",
    "trend_history",
    "trend_series",
    "validate_ledger",
]
