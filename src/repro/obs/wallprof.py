"""Opt-in wall-clock profiling of sweep points (``--profile-wall N``).

The simulator's own profiler (``repro.profile``) attributes *simulated*
nanoseconds; this module attributes *wall* seconds -- where does the
Python interpreter actually spend its time when it simulates a point?
That is the evidence the "next-generation engine core" roadmap item
needs: the top-function tables below are what justifies (or refutes)
replacing the event heap, batching word accounting, and so on.

Each profiled point runs under :mod:`cProfile` in its worker process;
the worker ships back a compact top-function table (not the raw stats
object, which does not pickle usefully), and the bench runner embeds
the tables of the slowest N points into the target's BENCH document
under ``wall_profile`` -- a wall-clock field, stripped from committed
snapshots exactly like ``wall_s``.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable


def profile_call(
    fn: Callable[..., Any], *args: Any, top: int = 10,
) -> tuple[Any, dict]:
    """Run ``fn(*args)`` under cProfile.

    Returns ``(value, table)`` where ``table`` is the JSON-able
    top-function summary from :func:`top_functions`.  Exceptions
    propagate unprofiled -- a failing point reports its error, not a
    stats table.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn(*args)
    finally:
        profiler.disable()
    return value, top_functions(profiler, top=top)


def top_functions(profiler: "cProfile.Profile", top: int = 10) -> dict:
    """The hottest functions by cumulative wall time, as plain dicts."""
    stats = pstats.Stats(profiler)
    total_calls = int(stats.total_calls)  # type: ignore[attr-defined]
    total_tt = float(stats.total_tt)  # type: ignore[attr-defined]
    rows = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) \
            in entries:
        # skip the profiler's own frame noise
        if funcname == "<built-in method builtins.exec>":
            continue
        short = filename.rsplit("/", 1)[-1]
        rows.append({
            "func": f"{short}:{lineno}({funcname})",
            "calls": int(nc),
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
        if len(rows) >= top:
            break
    return {
        "total_calls": total_calls,
        "total_time_s": round(total_tt, 6),
        "top": rows,
    }


def format_wall_profile(name: str, table: dict) -> str:
    """One point's table as the text block the bench report embeds."""
    lines = [
        f"{name}: {table['total_time_s']:.3f}s wall, "
        f"{table['total_calls']} calls",
        f"  {'cumtime':>9} {'tottime':>9} {'calls':>9}  function",
    ]
    for row in table["top"]:
        lines.append(
            f"  {row['cumtime_s']:9.4f} {row['tottime_s']:9.4f} "
            f"{row['calls']:9d}  {row['func']}"
        )
    return "\n".join(lines)
