"""The ``repro explain`` report: attribution + diagnosis, text or JSON.

Combines the three profiler views into one report object:

* the cost attribution with the top-K most expensive pages;
* a counterfactual verdict per reported page;
* optionally the critical path;
* optionally a per-page lifecycle timeline annotating each policy
  decision with the ``t1`` window comparison that drove it (the
  invalidation timestamp each fault saw, and whether the freeze window
  was open).

``to_json()`` output is canonical (sorted keys, fixed float formatting)
and byte-identical across same-seed runs, whether the source was the
live tracer or a saved bundle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .attribution import Attribution, compute_attribution
from .counterfactual import page_verdict
from .critical_path import CriticalPath, compute_critical_path
from .source import ProfileSource


@dataclass
class ExplainReport:
    source: ProfileSource
    attribution: Attribution
    #: [(cpage, categories)] most expensive first
    top: list[tuple[int, dict]] = field(default_factory=list)
    #: cpage -> counterfactual verdict
    verdicts: dict[int, dict] = field(default_factory=dict)
    critical_path: Optional[CriticalPath] = None
    #: cpage -> lifecycle timeline lines
    timelines: dict[int, list[str]] = field(default_factory=dict)

    # -- rendering ----------------------------------------------------------

    def to_dict(self) -> dict:
        doc = {
            "schema": "repro-explain/1",
            "workload": self.source.workload,
            "complete": self.source.complete,
            "attribution": self.attribution.to_dict(),
            "top_pages": [
                {
                    "cpage": cpage,
                    "label": self.attribution.label(cpage),
                    "total_ns": cats["total"],
                    "categories": {
                        k: v for k, v in sorted(cats.items())
                        if k != "total"
                    },
                    "freeze_penalty_ns":
                        self.attribution.freeze_penalty_ns.get(cpage, 0),
                    "verdict": self.verdicts.get(cpage),
                }
                for cpage, cats in self.top
            ],
        }
        if self.critical_path is not None:
            doc["critical_path"] = self.critical_path.to_dict()
        if self.timelines:
            doc["timelines"] = {
                str(c): lines
                for c, lines in sorted(self.timelines.items())
            }
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def format_text(self) -> str:
        a = self.attribution
        ms = 1e6
        lines = []
        title = self.source.workload or "trace"
        lines.append(
            f"explain: {title} -- {a.sim_time_ns / ms:.3f} ms simulated "
            f"on {a.n_processors} processors"
        )
        if a.complete:
            status = "exact" if a.reconciled else (
                f"NOT reconciled (overflow {a.overflow_ns} ns)")
            lines.append(
                f"attribution over {a.budget_ns / ms:.3f} ms of "
                f"processor time ({status}"
                + (f", {a.drift_ns} ns rounding drift absorbed)"
                   if a.drift_ns else ")")
            )
        else:
            lines.append(
                "bare trace: protocol costs only (run with --save or "
                "repro explain <workload> for exact attribution)"
            )
        lines.append("")
        lines.append("  time by category:")
        total = max(1, a.budget_ns)
        for cat, ns in a.per_category.items():
            if not ns:
                continue
            lines.append(
                f"    {cat:<20} {ns / ms:14.3f} ms  "
                f"{100.0 * ns / total:5.1f}%"
            )
        lines.append("")
        lines.append(f"  top {len(self.top)} pages by attributed cost:")
        for rank, (cpage, cats) in enumerate(self.top, start=1):
            label = a.label(cpage)
            penalty = a.freeze_penalty_ns.get(cpage, 0)
            head = (
                f"    #{rank} cpage {cpage} ({label}): "
                f"{cats['total'] / ms:.3f} ms"
            )
            if penalty:
                head += f", freeze penalty {penalty / ms:.3f} ms"
            lines.append(head)
            worst = sorted(
                ((k, v) for k, v in cats.items() if k != "total"),
                key=lambda kv: (-kv[1], kv[0]),
            )[:3]
            lines.append(
                "       "
                + ", ".join(f"{k} {v / ms:.3f} ms" for k, v in worst)
            )
            verdict = self.verdicts.get(cpage)
            if verdict and verdict.get("recommended") not in (
                None, "unknown"
            ):
                agrees = ("policy agrees" if verdict["policy_agrees"]
                          else f"policy chose {verdict['policy_chose']}")
                lines.append(
                    f"       counterfactual: {verdict['recommended']} "
                    f"(cache {verdict['cost_if_cache_ns'] / ms:.3f} ms "
                    f"vs remote {verdict['cost_if_remote_ns'] / ms:.3f} "
                    f"ms; {agrees}) -- {verdict['note']}"
                )
        if self.critical_path is not None:
            cp = self.critical_path
            lines.append("")
            lines.append(
                f"  critical path: {cp.path_ns / ms:.3f} ms over "
                f"{len(cp.segments)} protocol operations "
                f"({100.0 * cp.fraction:.1f}% of simulated time)"
            )
            for seg_kind, ns in sorted(cp.by_kind().items(),
                                       key=lambda kv: (-kv[1], kv[0])):
                lines.append(
                    f"    {seg_kind:<12} {ns / ms:12.3f} ms"
                )
            for seg in cp.segments[:12]:
                where = (f"cpage {seg.cpage}" if seg.cpage is not None
                         else "-")
                who = f"cpu{seg.proc}" if seg.proc is not None else ""
                action = seg.detail.get("action")
                lines.append(
                    f"    {seg.time / ms:10.3f} ms  {seg.kind:<10} "
                    f"{where:<10} {who:<6} +{seg.weight_ns / ms:.3f} ms"
                    + (f" ({action})" if action else "")
                )
            if len(cp.segments) > 12:
                lines.append(
                    f"    ... {len(cp.segments) - 12} more segments "
                    "(--format json for all)"
                )
        for cpage, timeline in sorted(self.timelines.items()):
            lines.append("")
            lines.append(
                f"  lifecycle of cpage {cpage} ({a.label(cpage)}):"
            )
            lines.extend("    " + line for line in timeline)
        lines.append("")
        return "\n".join(lines)


def build_explain(
    source: ProfileSource,
    top: int = 5,
    page: Optional[int] = None,
    critical_path: bool = False,
    timeline_limit: int = 40,
) -> ExplainReport:
    """Assemble the full report for one profile source."""
    attribution = compute_attribution(source)
    top_pages = attribution.top_pages(top)
    if page is not None and page not in [c for c, _ in top_pages]:
        cats = attribution.per_page.get(page, {"total": 0})
        top_pages = top_pages + [(page, cats)]
    verdicts = {
        cpage: page_verdict(source, cpage) for cpage, _ in top_pages
    }
    report = ExplainReport(
        source=source,
        attribution=attribution,
        top=top_pages,
        verdicts=verdicts,
        critical_path=(
            compute_critical_path(source) if critical_path else None
        ),
    )
    pages_for_timeline = (
        [page] if page is not None
        else [c for c, _ in top_pages[:1]]
    )
    for cpage in pages_for_timeline:
        report.timelines[cpage] = page_timeline(
            source, cpage, limit=timeline_limit
        )
    return report


def page_timeline(source: ProfileSource, cpage: int,
                  limit: int = 40) -> list[str]:
    """The policy lifecycle of one page, with t1-window annotations."""
    t1 = source.params.get("t1_freeze_window")
    ms = 1e6
    lines: list[str] = []
    events = [e for e in source.events if e["cpage"] == cpage]
    for e in events:
        if len(lines) >= limit:
            lines.append(f"... {len(events) - limit} more events")
            break
        kind = e["kind"]
        d = e["detail"]
        t = e["time"]
        who = f"cpu{e['proc']}" if e["proc"] is not None else "daemon"
        if kind == "fault":
            mode = "write" if d.get("write") else "read"
            line = (
                f"{t / ms:10.3f} ms  {who:<6} {mode} fault -> "
                f"{d.get('action', '?')} "
                f"[{d.get('from', '?')} -> {d.get('to', '?')}]"
            )
            last_inval = d.get("last_inval")
            if (t1 is not None and last_inval is not None
                    and d.get("action") in ("replicate", "migrate",
                                            "remote_map", "collapse")):
                age = t - last_inval
                if last_inval <= 0:
                    line += "  (no prior invalidation)"
                elif age < t1:
                    line += (
                        f"  (invalidated {age / ms:.3f} ms ago "
                        f"< t1={t1 / ms:g} ms: freeze window open)"
                    )
                else:
                    line += (
                        f"  (invalidated {age / ms:.3f} ms ago "
                        f">= t1={t1 / ms:g} ms: window clear)"
                    )
            lines.append(line)
        elif kind == "freeze":
            line = f"{t / ms:10.3f} ms  {who:<6} FROZEN"
            last_inval = d.get("last_inval")
            if t1 is not None and last_inval is not None:
                line += (
                    f"  (invalidated {(t - last_inval) / ms:.3f} ms ago "
                    f"< t1={t1 / ms:g} ms)"
                )
            lines.append(line)
        elif kind == "thaw":
            via = d.get("via", "?")
            lines.append(
                f"{t / ms:10.3f} ms  {who:<6} thawed (via {via})"
            )
        elif kind == "shootdown":
            lines.append(
                f"{t / ms:10.3f} ms  {who:<6} shootdown "
                f"{d.get('directive', '?')} "
                f"({d.get('interrupted', 0)} interrupted)"
            )
        elif kind == "transfer":
            lines.append(
                f"{t / ms:10.3f} ms  xfer   module {d.get('src')} -> "
                f"{d.get('dst')} (+{d.get('dur', 0) / ms:.3f} ms)"
            )
    if not lines:
        lines.append("no protocol events for this page")
    return lines
