"""Critical-path analysis over the protocol happens-before graph.

"What limited speedup at 12 processors" becomes a query: find the
longest chain of causally-dependent protocol operations, weighted by
each operation's cost, and attribute every segment.

Nodes are traced protocol events; their weights are the durations the
tracer records (fault ``dur``, transfer ``dur``, shootdown/thaw
``cost``).  Edges encode happens-before:

* **cause edges** -- the parent ids threaded through the tracer: a
  fault to the shootdowns/transfers its handler performed, a defrost
  run to its thaws, a thaw to its invalidation shootdown;
* **page serialization** -- consecutive protocol events on the same
  Cpage (the per-Cpage handler lock and the directory itself serialize
  them; an invalidation must precede the re-fault it provokes);
* **processor order** -- consecutive faults taken by the same
  processor (a thread cannot take its next fault before the previous
  one completed).

All edges point forward in time, so a longest-path DP over the
time-ordered events is exact.  The result is the heaviest dependency
chain; ``path_ns / sim_time_ns`` says how much of the run it covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .source import ProfileSource


def _weights(events: list[dict]) -> list[int]:
    """Per-event path weights.

    A fault's ``dur`` *includes* the transfers and shootdowns its
    handler performed; those appear as their own nodes linked by cause
    edges, so the fault's weight is its duration minus its children --
    a chain through fault and child counts each nanosecond once.
    """
    kind_of_eid = {
        e["eid"]: e["kind"] for e in events if "eid" in e
    }
    child_ns: dict[int, int] = {}
    for e in events:
        cause = e.get("cause")
        if cause is None:
            continue
        if e["kind"] == "transfer":
            child_ns[cause] = (
                child_ns.get(cause, 0) + e["detail"].get("dur", 0)
            )
        elif e["kind"] == "shootdown":
            child_ns[cause] = (
                child_ns.get(cause, 0) + e["detail"].get("cost", 0)
            )
    weights = []
    for e in events:
        kind = e["kind"]
        detail = e["detail"]
        if kind == "fault":
            w = detail.get("dur", 0)
            if "eid" in e:
                w -= child_ns.get(e["eid"], 0)
            weights.append(max(0, w))
        elif kind == "transfer":
            weights.append(detail.get("dur", 0))
        elif kind == "shootdown":
            # a thaw's invalidation shootdown costs the daemon nothing
            # the thaw event does not already cover
            if kind_of_eid.get(e.get("cause")) == "thaw":
                weights.append(0)
            else:
                weights.append(detail.get("cost", 0))
        elif kind == "thaw":
            weights.append(detail.get("cost", 0))
        else:
            weights.append(0)
    return weights


@dataclass
class Segment:
    """One event on the critical path."""

    time: int
    kind: str
    cpage: int | None
    proc: int | None
    weight_ns: int
    detail: dict

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "cpage": self.cpage,
            "proc": self.proc,
            "weight_ns": self.weight_ns,
            "action": self.detail.get("action"),
        }


@dataclass
class CriticalPath:
    """The heaviest happens-before chain of one run."""

    path_ns: int
    sim_time_ns: int
    segments: list[Segment] = field(default_factory=list)
    n_events: int = 0
    n_edges: int = 0

    @property
    def fraction(self) -> float:
        return self.path_ns / self.sim_time_ns if self.sim_time_ns else 0.0

    def by_kind(self) -> dict[str, int]:
        """Per-segment-kind attribution of the path's weight."""
        out: dict[str, int] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0) + seg.weight_ns
        return out

    def to_dict(self) -> dict:
        return {
            "path_ns": self.path_ns,
            "sim_time_ns": self.sim_time_ns,
            "fraction": round(self.fraction, 6),
            "n_events": self.n_events,
            "n_edges": self.n_edges,
            "by_kind": self.by_kind(),
            "segments": [seg.to_dict() for seg in self.segments],
        }


def compute_critical_path(source: ProfileSource,
                          max_segments: int = 50) -> CriticalPath:
    """Longest dependency chain over the traced protocol events."""
    events = source.events  # already time-ordered
    n = len(events)
    edges: list[list[int]] = [[] for _ in range(n)]
    n_edges = 0

    def link(src: int, dst: int) -> None:
        nonlocal n_edges
        if src != dst:
            edges[src].append(dst)
            n_edges += 1

    eid_index = {
        e["eid"]: i for i, e in enumerate(events) if "eid" in e
    }
    last_on_page: dict[int, int] = {}
    last_fault_of: dict[int, int] = {}
    for i, e in enumerate(events):
        cause = e.get("cause")
        if cause is not None and cause in eid_index:
            # cause edges go parent -> child; a fault's children are
            # recorded before it but never earlier in time, so flip to
            # keep every edge forward in the time order
            parent = eid_index[cause]
            if parent <= i:
                link(parent, i)
            else:
                link(i, parent)
        page = e["cpage"]
        if page is not None:
            prev = last_on_page.get(page)
            if prev is not None:
                link(prev, i)
            last_on_page[page] = i
        if e["kind"] == "fault" and e["proc"] is not None:
            prev = last_fault_of.get(e["proc"])
            if prev is not None:
                link(prev, i)
            last_fault_of[e["proc"]] = i

    # longest path DP in index order; edges all point to higher indices
    # except flipped cause edges, so process in a topological order:
    # sort indices so every edge source precedes its destinations
    best = [0] * n
    prev_hop = [-1] * n
    order = _topo_order(edges, n)
    weights = _weights(events)
    for i in order:
        w = best[i] + weights[i]
        for j in edges[i]:
            if w > best[j]:
                best[j] = w
                prev_hop[j] = i

    if n == 0:
        return CriticalPath(path_ns=0, sim_time_ns=source.sim_time_ns)
    end = max(range(n), key=lambda i: (best[i] + weights[i], -i))
    path_ns = best[end] + weights[end]
    chain: list[int] = []
    i = end
    while i != -1:
        chain.append(i)
        i = prev_hop[i]
    chain.reverse()
    segments = [
        Segment(
            time=events[i]["time"],
            kind=events[i]["kind"],
            cpage=events[i]["cpage"],
            proc=events[i]["proc"],
            weight_ns=weights[i],
            detail=events[i]["detail"],
        )
        for i in chain
        if weights[i] > 0
    ]
    if len(segments) > max_segments:
        # keep the heaviest, preserving time order
        keep = set(
            sorted(range(len(segments)),
                   key=lambda k: -segments[k].weight_ns)[:max_segments]
        )
        segments = [s for k, s in enumerate(segments) if k in keep]
    return CriticalPath(
        path_ns=path_ns,
        sim_time_ns=source.sim_time_ns,
        segments=segments,
        n_events=n,
        n_edges=n_edges,
    )


def _topo_order(edges: list[list[int]], n: int) -> list[int]:
    """Topological order (events are time-sorted, so the graph is a DAG;
    the few flipped cause edges stay within one timestamp)."""
    indeg = [0] * n
    for srcs in edges:
        for dst in srcs:
            indeg[dst] += 1
    from collections import deque

    queue = deque(i for i in range(n) if indeg[i] == 0)
    order: list[int] = []
    while queue:
        i = queue.popleft()
        order.append(i)
        for j in edges[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                queue.append(j)
    if len(order) != n:  # a cycle would mean corrupted causal ids;
        # fall back to plain time order rather than failing the report
        return list(range(n))
    return order
