"""Profile input: one normalized view of a run, live or from disk.

Everything downstream (attribution, critical path, explainability)
consumes a :class:`ProfileSource`, which can be built two ways:

* :meth:`ProfileSource.from_run` -- from a just-finished kernel/run,
  with the live tracer events, the machine parameters and (when an
  :class:`~repro.profile.probe.AccessProbe` was installed) the
  per-(page, processor) access-word counters;
* :meth:`ProfileSource.load` -- from a JSONL file.  A *profile bundle*
  written by :meth:`ProfileSource.save` carries a ``profile_meta``
  footer record with everything the event stream lacks (simulated time,
  parameters, access counters, page labels) and reproduces the live
  analysis byte-for-byte.  A bare trace exported with ``--trace-out``
  still loads, with ``complete=False``: protocol costs are attributed,
  access time and the exact reconciliation are not available.

Events are normalized to plain dicts in the JSONL record shape
(``{"time","kind","cpage","proc","detail"[,"eid"][,"cause"]}``) in both
paths, so live-hook and exported-JSONL analyses agree exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.trace import EventKind

#: schema tag of the profile_meta footer record
PROFILE_SCHEMA = "repro-profile/1"

#: machine parameters the profiler needs, captured into the bundle
PARAM_FIELDS = (
    "t_local", "t_remote_read", "t_remote_write", "t_block_word",
    "fault_fixed_local", "fault_fixed_remote", "shootdown_first",
    "shootdown_per_cpu", "page_free", "ipi_target_cost", "atc_miss_cost",
    "t_cpage_lock", "t1_freeze_window", "t2_defrost_period",
)

_EVENT_KINDS = {kind.value for kind in EventKind}
_EVENT_KEYS = {"time", "kind", "cpage", "proc", "detail"}


class ProfileError(Exception):
    """Unusable profiler input (missing file, malformed records)."""


@dataclass
class ProfileSource:
    """Everything the profiler knows about one run."""

    #: time-ordered protocol events as JSONL-shaped dicts
    events: list[dict]
    sim_time_ns: int
    n_processors: int
    #: machine timing parameters (PARAM_FIELDS plus words_per_page)
    params: dict
    #: AccessProbe rows (empty when no probe ran)
    access: list[dict] = field(default_factory=list)
    #: cpage index -> workload label (only labeled pages)
    page_labels: dict[int, str] = field(default_factory=dict)
    #: True when access counters and parameters were captured -- the
    #: precondition for exact time reconciliation
    complete: bool = True
    workload: str = ""

    # -- construction -------------------------------------------------------

    @classmethod
    def from_run(cls, kernel, result, probe=None,
                 workload: str = "") -> "ProfileSource":
        """Build a source from a finished traced run."""
        p = kernel.machine.params
        params = {name: getattr(p, name) for name in PARAM_FIELDS}
        params["words_per_page"] = p.words_per_page
        events = [_event_dict(e) for e in kernel.tracer.ordered()]
        labels = {
            cpage.index: cpage.label
            for cpage in kernel.coherent.cpages
            if cpage.label
        }
        return cls(
            events=events,
            sim_time_ns=int(result.sim_time_ns),
            n_processors=p.n_processors,
            params=params,
            access=probe.table() if probe is not None else [],
            page_labels=labels,
            complete=probe is not None,
            workload=workload,
        )

    # -- persistence --------------------------------------------------------

    def save(self, destination: Union[str, Path]) -> Path:
        """Write a profile bundle: JSONL events + a profile_meta footer."""
        path = Path(destination)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as stream:
            for event in self.events:
                stream.write(json.dumps(
                    event, sort_keys=True, separators=(",", ":")))
                stream.write("\n")
            stream.write(json.dumps(self._meta(),
                                    sort_keys=True,
                                    separators=(",", ":")))
            stream.write("\n")
        return path

    def _meta(self) -> dict:
        return {
            "record": "profile_meta",
            "schema": PROFILE_SCHEMA,
            "sim_time_ns": self.sim_time_ns,
            "n_processors": self.n_processors,
            "params": self.params,
            "access": self.access,
            "page_labels": {
                str(k): v for k, v in sorted(self.page_labels.items())
            },
            "complete": self.complete,
            "workload": self.workload,
        }

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProfileSource":
        """Load a profile bundle or a bare exported JSONL trace."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ProfileError(f"cannot read {path}: {exc}") from exc
        events: list[dict] = []
        meta: Optional[dict] = None
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProfileError(
                    f"{path}:{lineno}: not JSON ({exc.msg})") from exc
            if not isinstance(record, dict):
                raise ProfileError(
                    f"{path}:{lineno}: expected an object, got "
                    f"{type(record).__name__}")
            if "record" in record:
                if record["record"] == "profile_meta":
                    if record.get("schema") != PROFILE_SCHEMA:
                        raise ProfileError(
                            f"{path}:{lineno}: profile_meta schema "
                            f"{record.get('schema')!r} is not "
                            f"{PROFILE_SCHEMA!r}")
                    meta = record
                continue  # foreign records (metric/sample) are skipped
            missing = _EVENT_KEYS - record.keys()
            if missing:
                raise ProfileError(
                    f"{path}:{lineno}: event record is missing "
                    f"{sorted(missing)}; is this a protocol trace?")
            if record["kind"] not in _EVENT_KINDS:
                raise ProfileError(
                    f"{path}:{lineno}: unknown event kind "
                    f"{record['kind']!r}")
            events.append(record)
        if not events:
            raise ProfileError(
                f"{path}: no protocol events found "
                "(expected JSONL from --trace-out or repro explain --save)")
        events.sort(key=lambda e: e["time"])  # stable: JSONL is in
        # recording order, matching ProtocolTracer.ordered()
        if meta is not None:
            return cls(
                events=events,
                sim_time_ns=meta["sim_time_ns"],
                n_processors=meta["n_processors"],
                params=meta["params"],
                access=meta["access"],
                page_labels={
                    int(k): v
                    for k, v in meta.get("page_labels", {}).items()
                },
                complete=bool(meta.get("complete", True)),
                workload=meta.get("workload", ""),
            )
        # bare trace: degrade gracefully -- protocol costs only
        procs = [e["proc"] for e in events if e["proc"] is not None]
        return cls(
            events=events,
            sim_time_ns=max(e["time"] for e in events),
            n_processors=(max(procs) + 1) if procs else 1,
            params={},
            access=[],
            page_labels={},
            complete=False,
            workload="",
        )


def _event_dict(event) -> dict:
    record = {
        "time": event.time,
        "kind": event.kind.value,
        "cpage": event.cpage_index,
        "proc": event.processor,
        "detail": event.detail,
    }
    if event.eid is not None:
        record["eid"] = event.eid
    if event.cause is not None:
        record["cause"] = event.cause
    return record
