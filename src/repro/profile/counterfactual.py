"""Counterfactual policy scoring: did the policy choose right?

For one page, take the *observed* reference string -- how many words
each processor moved, how many policy-decided misses occurred -- and
price it under the two pure alternatives of the paper's section 4 cost
model (:class:`~repro.analysis.costmodel.MigrationCostModel`):

* **cache** (replicate/migrate on every miss): every miss pays a page
  copy plus the fixed fault overhead, and the page's cross-processor
  words then cost local time;
* **remote_map**: each sharer pays one mapping fault, and the
  cross-processor words stay remote at the measured read/write
  latencies.

Whichever is cheaper is the recommendation; within 5% the verdict is
``indifferent``.  For the section 4.2 anecdote page (write-shared by
every worker) caching keeps being invalidated, so the scorer flags it
with ``recommended == "remote_map"`` -- the same conclusion the paper's
programmers reached by reading the per-page instrumentation.

By default this is deliberately a *model* of the alternative, not a
re-simulation: the reference string is taken as fixed, which is exactly
the approximation the paper's own cost model (section 4.1) makes.  When
a ``repro-trace/1`` bundle of the run is available (``trace=``), the
scorer upgrades to full fidelity: it re-simulates the whole trace under
each pure policy (``always`` for cache, ``never`` for remote_map) and
reads the page's attributed cost out of each replay, so queueing,
shootdown fan-out and fault interleaving are priced for real instead of
modeled.  Both paths share the same 5% indifference margin; the
``method`` key records which one produced the verdict.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis.costmodel import MigrationCostModel
from .attribution import compute_attribution
from .source import ProfileSource

#: fault actions that represent a policy-decided miss on a shared page
MISS_ACTIONS = ("replicate", "migrate", "remote_map", "collapse")

#: relative margin under which the two alternatives are a wash
INDIFFERENCE_MARGIN = 0.05

#: pure-alternative replays already priced this process, keyed by
#: (trace identity, policy) -- ``repro explain`` scores several pages
#: from one bundle and each replay prices every page at once
_REPLAY_MEMO: dict = {}


def _replayed_attribution(trace, policy: str):
    """Per-page cost attribution of ``trace`` re-simulated under a pure
    policy (memoized per trace + policy)."""
    key = (
        str(trace) if isinstance(trace, (str, Path)) else id(trace),
        policy,
    )
    cached = _REPLAY_MEMO.get(key)
    if cached is not None:
        return cached
    from ..replay import replay_trace  # local: profile <-> replay cycle

    result = replay_trace(trace, policy=policy, trace=True, probe=True,
                          metrics=False)
    replay_source = ProfileSource.from_run(
        result.kernel, result, result.probe,
        workload=f"replay:{policy}",
    )
    attribution = compute_attribution(replay_source)
    _REPLAY_MEMO[key] = attribution
    return attribution


def _replay_page_costs(trace, cpage: int) -> tuple[int, int]:
    """(cost under always-cache, cost under never-cache) for one page,
    each the page's attributed nanoseconds in a full re-simulation."""
    cache = _replayed_attribution(trace, "always")
    remote = _replayed_attribution(trace, "never")
    return (
        int(cache.per_page.get(cpage, {}).get("total", 0)),
        int(remote.per_page.get(cpage, {}).get("total", 0)),
    )


def page_verdict(source: ProfileSource, cpage: int, trace=None) -> dict:
    """Score the observed reference string of one page (see module doc).

    ``trace`` may name a ``repro-trace/1`` bundle (path or
    :class:`~repro.replay.TraceBundle`) of the same run; when given,
    the two alternatives are priced by full re-simulation instead of
    the analytic cost model.
    """
    params = source.params
    actions: dict[str, int] = {}
    for e in source.events:
        if e["kind"] == "fault" and e["cpage"] == cpage:
            action = e["detail"].get("action", "?")
            actions[action] = actions.get(action, 0) + 1
    words: dict[int, tuple[int, int]] = {}  # proc -> (reads, writes)
    for row in source.access:
        if row["cpage"] != cpage:
            continue
        reads = (row["local_read"] + row["remote_read"]
                 + row["frozen_read"])
        writes = (row["local_write"] + row["remote_write"]
                  + row["frozen_write"])
        words[row["proc"]] = (reads, writes)

    total_words = sum(r + w for r, w in words.values())
    misses = sum(actions.get(a, 0) for a in MISS_ACTIONS)
    verdict = {
        "cpage": cpage,
        "label": source.page_labels.get(cpage, f"cpage{cpage}"),
        "actions": dict(sorted(actions.items())),
        "misses": misses,
        "sharers": len(words),
        "words": total_words,
    }
    if total_words == 0 and misses == 0:
        # zero-length reference string: nothing to decide
        verdict.update(recommended="indifferent", policy_chose="none",
                       policy_agrees=True, cost_if_cache_ns=0,
                       cost_if_remote_ns=0, method="model",
                       note="page was never referenced")
        return verdict
    if trace is None and (not source.complete or not params):
        verdict.update(recommended="unknown", policy_chose="unknown",
                       policy_agrees=True, cost_if_cache_ns=0,
                       cost_if_remote_ns=0, method="model",
                       note="no access counters in this trace")
        return verdict

    # the natural home is the heaviest user; everyone else's words are
    # the cross-processor traffic the policy choice prices
    home = min(words, key=lambda p: (-(words[p][0] + words[p][1]), p)) \
        if words else None
    shared_reads = sum(r for p, (r, w) in words.items() if p != home)
    shared_writes = sum(w for p, (r, w) in words.items() if p != home)
    sharers = [p for p in words if p != home]
    shared = shared_reads + shared_writes

    if trace is not None:
        # full fidelity: the page's attributed cost in a re-simulation
        # of the whole run under each pure policy
        method = "replay"
        cost_cache, cost_remote = _replay_page_costs(trace, cpage)
    else:
        # F as the paper uses it: worst-case migration overhead --
        # remote kernel data plus a shootdown plus freeing the old copy
        method = "model"
        model = MigrationCostModel(
            t_local=params["t_local"],
            t_remote=params["t_remote_read"],
            t_block=params["t_block_word"],
            fixed_overhead=(params["fault_fixed_remote"]
                            + params["shootdown_first"]
                            + params["page_free"]),
        )
        s = params["words_per_page"]
        cost_cache = int(round(
            misses * model.migrate_cost(s) + shared * params["t_local"]
        ))
        cost_remote = int(round(
            len(sharers) * params["fault_fixed_remote"]
            + shared_reads * params["t_remote_read"]
            + shared_writes * params["t_remote_write"]
        ))
    if cost_cache == cost_remote == 0 or (
        method == "model" and shared == 0 and misses == 0
    ):
        recommended = "indifferent"
        note = "single-processor page; placement does not matter"
    elif abs(cost_cache - cost_remote) <= (
        INDIFFERENCE_MARGIN * max(cost_cache, cost_remote)
    ):
        recommended = "indifferent"
        note = "alternatives within 5%"
    elif cost_cache < cost_remote:
        recommended = "cache"
        note = "copies amortize: replication/migration pays here"
    else:
        recommended = "remote_map"
        note = ("caching keeps getting invalidated: remote references "
                "are cheaper than repeated copies")

    cached = (actions.get("replicate", 0) + actions.get("migrate", 0))
    remote_mapped = actions.get("remote_map", 0)
    if cached == 0 and remote_mapped == 0:
        policy_chose = "none"
    elif cached >= remote_mapped:
        policy_chose = "cache"
    else:
        policy_chose = "remote_map"
    verdict.update(
        recommended=recommended,
        policy_chose=policy_chose,
        policy_agrees=(
            recommended in ("indifferent", policy_chose)
            or policy_chose == "none"
        ),
        cost_if_cache_ns=cost_cache,
        cost_if_remote_ns=cost_remote,
        method=method,
        note=note,
    )
    return verdict
