"""Per-(Cpage, processor) access accounting for cost attribution.

The machine's batched word counters (``machine.local_words`` etc.) say
how each *processor* spent its access time but not on which *page*; the
protocol trace says what the protocol did but not where the ordinary
access time went.  The probe fills the gap: installed on the coherent
memory facade it records, per (Cpage, processor), how many words were
accessed locally, remotely and remotely-while-frozen, split by
read/write (the two have different remote latencies), plus the queueing
delay suffered.

The executor hot path pays one attribute load and one branch when no
probe is installed -- same discipline as the metrics registry.
"""

from __future__ import annotations

#: counter slots per (cpage, proc) key
LOCAL_READ = 0
LOCAL_WRITE = 1
REMOTE_READ = 2
REMOTE_WRITE = 3
FROZEN_READ = 4
FROZEN_WRITE = 5
QUEUE_NS = 6
_SLOTS = 7

#: field names, index-aligned with the slots above
FIELDS = (
    "local_read", "local_write", "remote_read", "remote_write",
    "frozen_read", "frozen_write", "queue_ns",
)


class AccessProbe:
    """Records batched access runs against the page they touched.

    Frozen-ness is sampled at access time from the Cpage table, so words
    moved while a page sat frozen are separable from ordinary remote
    traffic -- that difference *is* the freeze penalty the section 4.2
    anecdote turns on.
    """

    __slots__ = ("cpages", "counts")

    def __init__(self, cpages) -> None:
        self.cpages = cpages
        #: (cpage_index, proc) -> [7 counters]
        self.counts: dict[tuple[int, int], list[int]] = {}

    @classmethod
    def install(cls, coherent) -> "AccessProbe":
        """Attach a fresh probe to a CoherentMemorySystem; returns it."""
        probe = cls(coherent.cpages)
        coherent.access_probe = probe
        return probe

    def note(self, cpage_index: int, proc: int, write: bool,
             outcome) -> None:
        """Record one batched access run (called from the executor)."""
        key = (cpage_index, proc)
        c = self.counts.get(key)
        if c is None:
            c = self.counts[key] = [0] * _SLOTS
        if outcome.remote:
            if self.cpages.get(cpage_index).frozen:
                idx = FROZEN_WRITE if write else FROZEN_READ
            else:
                idx = REMOTE_WRITE if write else REMOTE_READ
        else:
            idx = LOCAL_WRITE if write else LOCAL_READ
        c[idx] += outcome.words
        c[QUEUE_NS] += outcome.queue_delay

    def table(self) -> list[dict]:
        """The counters as a deterministic, JSON-ready list of rows."""
        rows = []
        for (cpage, proc) in sorted(self.counts):
            counters = self.counts[(cpage, proc)]
            row = {"cpage": cpage, "proc": proc}
            for name, value in zip(FIELDS, counters):
                row[name] = value
            rows.append(row)
        return rows
