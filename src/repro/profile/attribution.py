"""Exact cost attribution: where did every processor-nanosecond go?

The accounting identity is *processor time*: a run of ``T`` simulated
nanoseconds on ``P`` processors has a budget of exactly ``P * T`` ns,
each processor owning the interval ``[0, T]``.  Attribution tiles each
processor's interval with disjoint categories:

``local_access``
    words accessed in the local memory module, at ``t_local`` each.
``remote_access``
    words accessed across the interconnect (read/write latencies
    differ), excluding frozen pages.
``remote_access_frozen``
    remote words to pages that sat frozen at access time -- the base
    the freeze penalty is derived from.
``queue_delay``
    time lost queueing on memory buses and switch ports.
``fault_wait`` / ``fault_fixed`` / ``fault_other``
    per-Cpage handler-lock waits, the fixed allocate-and-map overhead
    (0.23/0.27 ms), and the per-fault residual (page frees, shootdown
    rounding) after subtracting the fault's child operations.
``page_copy``
    block transfers performed by the processor's fault handler.
``shootdown`` / ``shootdown_ipi``
    initiator-side synchronization cost, and the per-target interrupt
    cost charged to each interrupted processor.
``defrost``
    daemon thaw work charged to the page's home node.
``compute_idle``
    the derived remainder of the processor's interval: user compute,
    genuine idleness, and costs the model does not trace (e.g. ATC
    misses).  Deriving it makes the decomposition sum *exactly* to
    ``P * T`` by construction; the meaningful check is that no
    processor's explicit categories overflow its interval
    (``overflow_ns == 0``).

Access categories need the per-(page, processor) word counters of an
:class:`~repro.profile.probe.AccessProbe`; without them (a bare trace)
the attribution degrades to protocol costs only and ``complete`` is
False.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .source import ProfileSource

#: attribution categories, in report order
CATEGORIES = (
    "local_access",
    "remote_access",
    "remote_access_frozen",
    "queue_delay",
    "fault_wait",
    "fault_fixed",
    "fault_other",
    "page_copy",
    "shootdown",
    "shootdown_ipi",
    "defrost",
    "compute_idle",
)


@dataclass
class Attribution:
    """The full three-way decomposition of one run's processor time."""

    sim_time_ns: int
    n_processors: int
    #: n_processors * sim_time_ns
    budget_ns: int
    per_category: dict[str, int]
    per_processor: dict[int, dict[str, int]]
    #: cpage -> {category: ns, "total": ns} (explicit categories only)
    per_page: dict[int, dict[str, int]]
    #: cpage -> derived freeze penalty (frozen remote time minus the
    #: hypothetical local time for the same words)
    freeze_penalty_ns: dict[int, int]
    page_labels: dict[int, str] = field(default_factory=dict)
    #: negative per-fault residuals clamped to zero (rounding slack)
    drift_ns: int = 0
    #: explicit categories exceeding a processor's interval (should be 0)
    overflow_ns: int = 0
    complete: bool = True

    @property
    def reconciled(self) -> bool:
        """Do the categories tile the budget exactly?"""
        return (
            self.complete
            and sum(self.per_category.values()) == self.budget_ns
            and self.overflow_ns == 0
        )

    def top_pages(self, k: int) -> list[tuple[int, dict[str, int]]]:
        """The k most expensive pages by total attributed cost."""
        ranked = sorted(
            self.per_page.items(), key=lambda kv: (-kv[1]["total"], kv[0])
        )
        return ranked[:k]

    def label(self, cpage: int) -> str:
        return self.page_labels.get(cpage, f"cpage{cpage}")

    def to_dict(self) -> dict:
        return {
            "sim_time_ns": self.sim_time_ns,
            "n_processors": self.n_processors,
            "budget_ns": self.budget_ns,
            "reconciled": self.reconciled,
            "complete": self.complete,
            "drift_ns": self.drift_ns,
            "overflow_ns": self.overflow_ns,
            "per_category": dict(self.per_category),
            "per_processor": {
                str(p): dict(cats)
                for p, cats in sorted(self.per_processor.items())
            },
            "per_page": {
                str(c): dict(cats)
                for c, cats in sorted(self.per_page.items())
            },
            "freeze_penalty_ns": {
                str(c): v
                for c, v in sorted(self.freeze_penalty_ns.items())
            },
            "page_labels": {
                str(c): v for c, v in sorted(self.page_labels.items())
            },
        }


def compute_attribution(source: ProfileSource) -> Attribution:
    """Decompose the run's processor time (see module docstring)."""
    T = source.sim_time_ns
    P = source.n_processors
    params = source.params
    per_proc: dict[int, dict[str, int]] = {
        p: {cat: 0 for cat in CATEGORIES} for p in range(P)
    }
    per_page: dict[int, dict[str, int]] = {}
    freeze_penalty: dict[int, int] = {}
    drift = 0

    def add(cat: str, ns: int, proc, page) -> None:
        if ns == 0:
            return
        if proc is not None and 0 <= proc < P:
            per_proc[proc][cat] += ns
        if page is not None:
            cats = per_page.get(page)
            if cats is None:
                cats = per_page[page] = {"total": 0}
            cats[cat] = cats.get(cat, 0) + ns
            cats["total"] += ns

    # -- protocol costs from the event stream ------------------------------
    by_eid = {e["eid"]: e for e in source.events if "eid" in e}
    children: dict[int, list[dict]] = {}
    for e in source.events:
        cause = e.get("cause")
        if cause is not None:
            children.setdefault(cause, []).append(e)
    ipi_cost = int(round(params.get("ipi_target_cost", 0)))
    for e in source.events:
        kind = e["kind"]
        d = e["detail"]
        page = e["cpage"]
        proc = e["proc"]
        if kind == "fault":
            dur = d.get("dur", 0)
            wait = d.get("wait", 0)
            fixed = d.get("fixed", 0)
            child_ns = 0
            for c in children.get(e.get("eid"), ()):
                if c["kind"] == "transfer":
                    child_ns += c["detail"].get("dur", 0)
                elif c["kind"] == "shootdown":
                    child_ns += c["detail"].get("cost", 0)
            other = dur - wait - fixed - child_ns
            if other < 0:  # float-rounding slack between child sums
                drift += -other
                other = 0
            add("fault_wait", wait, proc, page)
            add("fault_fixed", fixed, proc, page)
            add("fault_other", other, proc, page)
        elif kind == "transfer":
            parent = by_eid.get(e.get("cause"))
            owner = parent["proc"] if parent is not None else None
            add("page_copy", d.get("dur", 0), owner, page)
        elif kind == "shootdown":
            parent = by_eid.get(e.get("cause"))
            if parent is not None and parent["kind"] == "fault":
                # initiator cost is inside the fault handler's time;
                # thaw-caused shootdowns are charged via the thaw event
                add("shootdown", d.get("cost", 0), proc, page)
            for target in d.get("targets", ()):
                add("shootdown_ipi", ipi_cost, target, page)
        elif kind == "thaw" and d.get("via") == "defrost":
            add("defrost", d.get("cost", 0), proc, page)

    # -- access time from the probe counters -------------------------------
    if source.access:
        t_local = params["t_local"]
        t_rr = params["t_remote_read"]
        t_rw = params["t_remote_write"]
        for row in source.access:
            proc = row["proc"]
            page = row["cpage"]
            add("local_access",
                int(round((row["local_read"] + row["local_write"])
                          * t_local)), proc, page)
            add("remote_access",
                int(round(row["remote_read"] * t_rr
                          + row["remote_write"] * t_rw)), proc, page)
            frozen_words = row["frozen_read"] + row["frozen_write"]
            if frozen_words:
                frozen_ns = int(round(row["frozen_read"] * t_rr
                                      + row["frozen_write"] * t_rw))
                add("remote_access_frozen", frozen_ns, proc, page)
                penalty = frozen_ns - int(round(frozen_words * t_local))
                freeze_penalty[page] = (
                    freeze_penalty.get(page, 0) + penalty
                )
            add("queue_delay", row["queue_ns"], proc, page)

    # -- derived residual: tile each processor's interval exactly ----------
    overflow = 0
    for p in range(P):
        cats = per_proc[p]
        used = sum(v for c, v in cats.items() if c != "compute_idle")
        residual = T - used
        if residual < 0:
            overflow += -residual
            residual = 0
        cats["compute_idle"] = residual

    per_category = {cat: 0 for cat in CATEGORIES}
    for cats in per_proc.values():
        for cat, ns in cats.items():
            per_category[cat] += ns
    # proc-less costs (transfers whose parent fault is unknown -- bare
    # traces from before causal ids) appear in page tables only; with a
    # complete bundle every cost has an owner and the tiling is exact
    budget = P * T
    if not source.complete:
        per_category["compute_idle"] = 0
        for cats in per_proc.values():
            cats["compute_idle"] = 0

    return Attribution(
        sim_time_ns=T,
        n_processors=P,
        budget_ns=budget,
        per_category=per_category,
        per_processor=per_proc,
        per_page=per_page,
        freeze_penalty_ns=freeze_penalty,
        page_labels=dict(source.page_labels),
        drift_ns=drift,
        overflow_ns=overflow,
        complete=source.complete,
    )


def attribution_summary(source: ProfileSource, top: int = 5) -> dict:
    """A compact attribution block for embedding in BENCH points."""
    attribution = compute_attribution(source)
    return {
        "sim_time_ns": attribution.sim_time_ns,
        "budget_ns": attribution.budget_ns,
        "reconciled": attribution.reconciled,
        "per_category": {
            cat: ns
            for cat, ns in attribution.per_category.items() if ns
        },
        "top_pages": [
            {
                "cpage": cpage,
                "label": attribution.label(cpage),
                "total_ns": cats["total"],
                "freeze_penalty_ns":
                    attribution.freeze_penalty_ns.get(cpage, 0),
            }
            for cpage, cats in attribution.top_pages(top)
        ],
    }
