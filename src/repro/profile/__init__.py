"""Causal coherence profiler (paper section 4.2, the debugging story).

The paper's programmers found a falsely-shared work-queue page by
reading PLATINUM's per-page instrumentation, realized the freeze policy
was bouncing it, and restructured the layout for a large speedup.  This
package turns that workflow into a tool.  It consumes the
:class:`~repro.core.trace.ProtocolTracer` event stream -- live from a
run or loaded from an exported JSONL bundle -- and produces three linked
views:

* **cost attribution** (:mod:`repro.profile.attribution`): every
  simulated nanosecond of every processor decomposed into disjoint
  categories (local access, remote access, frozen-page remote access,
  queueing, fault overheads, page copies, shootdowns, defrost work,
  residual compute/idle), reconciled exactly against
  ``n_processors * sim_time_ns``;
* **critical-path analysis** (:mod:`repro.profile.critical_path`): the
  longest chain of causally-dependent protocol operations, built from
  the parent event ids the tracer threads through faults, shootdowns,
  transfers and thaws;
* **policy explainability** (:mod:`repro.profile.explain` and
  :mod:`repro.profile.counterfactual`): a per-Cpage lifecycle timeline
  annotated with the ``t1`` window comparisons that drove each decision,
  plus a counterfactual scorer that prices the page's observed reference
  string under the alternative policy (always-cache vs remote-map).

Surfaced on the command line as ``repro explain``.
"""

from .attribution import (  # noqa: F401
    CATEGORIES,
    Attribution,
    attribution_summary,
    compute_attribution,
)
from .counterfactual import page_verdict  # noqa: F401
from .critical_path import CriticalPath, compute_critical_path  # noqa: F401
from .explain import ExplainReport, build_explain  # noqa: F401
from .probe import AccessProbe  # noqa: F401
from .source import (  # noqa: F401
    PROFILE_SCHEMA,
    ProfileError,
    ProfileSource,
)
