"""Section 4 microbenchmarks: the cost of basic coherent-memory operations.

The paper reports, on the 16-processor Butterfly Plus:

* page-aligned block transfer of a 4 KB page: 1.11 ms;
* read miss replicating a non-modified page: 1.34--1.38 ms
  (fixed overhead 0.23 ms with local kernel data, 0.27 ms with remote);
* read miss replicating a modified page, one processor interrupted:
  1.38--1.59 ms;
* write miss on a present+ page, one processor interrupted and one page
  freed: 0.25--0.45 ms;
* incremental initiator delay per additional interrupted processor:
  at most ~17 us (~7 us interrupt + ~10 us page free) -- versus 55 us
  per processor for Mach's shootdown on an Encore Multimax.

These functions drive the live fault handler on purpose-built Cpage
states and report the initiator-observed latency of each operation.  They
are both the regression tests for the cost model and the generators for
``benchmarks/bench_sec4_micro.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policy import AlwaysReplicatePolicy
from ..kernel.kernel import Kernel
from ..machine.params import MachineParams
from ..machine.pmap import Rights


def _micro_kernel(n_processors: int = 16, **overrides) -> Kernel:
    params = MachineParams(n_processors=n_processors).scaled(**overrides)
    return Kernel(
        params=params,
        policy=AlwaysReplicatePolicy(),
        defrost_enabled=False,
    )


@dataclass
class MicroSetup:
    """A kernel plus one single-page Cpage mapped into one address space."""

    kernel: Kernel
    aspace_id: int
    vpage: int
    cpage: object

    def settle(self, gap_ns: float = 20e6) -> None:
        """Advance simulated time so prior kernel work has drained --
        each measurement then sees an idle machine, like the paper's
        contention-free timings."""
        engine = self.kernel.engine
        engine.run(until=engine.now + gap_ns)

    def fault(self, proc: int, write: bool) -> float:
        """Fault from ``proc`` on an idle machine; returns latency in ns."""
        self.settle()
        now = self.kernel.engine.now
        result = self.kernel.fault(
            proc, self.aspace_id, self.vpage, write, now
        )
        return float(result.completion - now)


def _setup(
    home_module: int, n_processors: int = 16, **overrides
) -> MicroSetup:
    """One Cpage whose kernel metadata lives on ``home_module``."""
    kernel = _micro_kernel(n_processors, **overrides)
    cpage = kernel.coherent.cpages.create(
        home_module=home_module, label="micro"
    )
    aspace = kernel.vm.create_address_space()
    kernel.coherent.map_page(aspace.asid, 0, cpage, Rights.WRITE)
    for proc in range(kernel.params.n_processors):
        kernel.coherent.activate(aspace.asid, proc)
    return MicroSetup(kernel, aspace.asid, 0, cpage)


# -- the individual measurements -----------------------------------------------


def measure_page_copy(n_processors: int = 16, **overrides) -> float:
    """Contention-free page-aligned block transfer (paper: 1.11 ms)."""
    kernel = _micro_kernel(n_processors, **overrides)
    src = kernel.machine.modules[0].allocate()
    dst = kernel.machine.modules[1].allocate()
    now = kernel.engine.now
    end = kernel.machine.xfer.transfer_page(src, dst, now)
    return float(end - now)


def measure_read_miss_clean(local_metadata: bool) -> float:
    """Read miss replicating a non-modified page (paper: 1.34--1.38 ms).

    ``local_metadata=True`` is the 1.34 ms case (Cpage metadata on the
    faulting node); False is the 1.38 ms remote-metadata case.
    """
    faulter = 0
    setup = _setup(home_module=faulter if local_metadata else 3)
    setup.fault(1, write=False)  # first touch: present1 on node 1
    return setup.fault(faulter, write=False)  # replicate -> present+


def measure_read_miss_modified(local_metadata: bool) -> float:
    """Read miss replicating a modified page with one writer interrupted
    (paper: 1.38--1.59 ms)."""
    faulter = 0
    setup = _setup(home_module=faulter if local_metadata else 3)
    setup.fault(1, write=True)  # modified, write-mapped on node 1
    return setup.fault(faulter, write=False)  # restrict + replicate


def measure_write_miss_present_plus(
    n_replicas: int = 2, local_metadata: bool = True
) -> float:
    """Write miss collapsing a present+ page (paper: 0.25--0.45 ms with
    one processor interrupted and one page freed).

    The faulting node holds one replica; ``n_replicas - 1`` other nodes
    hold the rest and get interrupted.
    """
    if n_replicas < 2:
        raise ValueError("present+ needs at least two replicas")
    faulter = 0
    setup = _setup(home_module=faulter if local_metadata else 3)
    setup.fault(1, write=False)  # present1 on node 1
    setup.fault(faulter, write=False)  # replica on the faulting node
    for node in range(2, n_replicas):
        setup.fault(node, write=False)
    return setup.fault(faulter, write=True)


def measure_shootdown_increment(max_targets: int = 15) -> list[float]:
    """Initiator cost of a present+ collapse vs number of interrupted
    processors; the per-processor increments should be <= ~17 us
    (7 us interrupt + 10 us page free)."""
    costs = []
    for n_targets in range(1, max_targets + 1):
        latency = measure_write_miss_present_plus(
            n_replicas=n_targets + 1
        )
        costs.append(latency)
    return costs


def measure_upgrade_write() -> float:
    """present1 -> modified upgrade by the holder: needs neither
    invalidation nor reclamation (the cheap case the present1 state
    exists for)."""
    setup = _setup(home_module=1)
    setup.fault(1, write=False)  # present1 on node 1
    return setup.fault(1, write=True)


def measure_remote_map_write() -> float:
    """Remote write mapping instead of migration (the protocol's NUMA
    extension): no copy, no page free."""
    setup = _setup(home_module=0)
    setup.fault(1, write=True)  # modified on node 1
    # force a remote mapping via a never-cache decision
    from ..core.policy import NeverCachePolicy

    setup.kernel.coherent.fault_handler.policy = NeverCachePolicy()
    return setup.fault(0, write=True)
