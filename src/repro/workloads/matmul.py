"""Blocked matrix multiply: the read-mostly replication showcase.

``C = A x B`` with the rows of ``A`` and ``C`` partitioned among the
threads and ``B`` shared read-only by everyone.  This is the access
pattern PLATINUM is best at (paper section 6's "read-only data should be
kept separate from modifiable data" done right): ``B``'s pages replicate
once to every node and all the inner-loop traffic is local, ``A``/``C``
rows are first-touch local, and there is no write-sharing at all --
speedup should be nearly linear and no page should ever freeze.

Arithmetic is modulo a large prime and the result is verified against
numpy, like the other applications.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import Matrix
from ..runtime.ops import Compute
from ..runtime.program import Program, ProgramAPI, ThreadEnv

MODULUS = 2_147_483_647

#: multiply-accumulate cost per inner-product element
DEFAULT_COMPUTE_PER_MAC = 500.0


def make_operands(
    n: int, seed: int = 1989
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 20, size=(n, n), dtype=WORD_DTYPE)
    b = rng.integers(0, 1 << 20, size=(n, n), dtype=WORD_DTYPE)
    return a, b


def matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A x B (mod P), row by row to stay inside int64."""
    n = len(a)
    c = np.zeros((n, n), dtype=WORD_DTYPE)
    for i in range(n):
        acc = np.zeros(n, dtype=WORD_DTYPE)
        for k in range(n):
            acc = (acc + int(a[i, k]) * b[k] % MODULUS) % MODULUS
        c[i] = acc
    return c


class MatrixMultiply(Program):
    """Row-partitioned C = A x B on coherent memory."""

    name = "matmul"

    def __init__(
        self,
        n: int = 48,
        n_threads: Optional[int] = None,
        seed: int = 1989,
        compute_per_mac: float = DEFAULT_COMPUTE_PER_MAC,
        verify_result: bool = True,
        pad_c_rows: bool = True,
    ) -> None:
        """``pad_c_rows`` applies the section 6 allocation discipline to
        the output matrix: each C row gets its own page so threads never
        write-share a page.  ``False`` recreates the false-sharing
        layout, under which the C pages freeze (a good ablation)."""
        if n < 2:
            raise ValueError("matrices must be at least 2x2")
        self.n = n
        self.n_threads = n_threads
        self.seed = seed
        self.compute_per_mac = compute_per_mac
        self.verify_result = verify_result
        self.pad_c_rows = pad_c_rows
        self._a, self._b = make_operands(n, seed)
        self._final: Optional[np.ndarray] = None

    def setup(self, api: ProgramAPI) -> None:
        n = self.n
        self.p = min(self.n_threads or api.n_processors, n)
        wpp = api.kernel.params.words_per_page
        pages = (n * n + wpp - 1) // wpp + 1
        a_arena = api.arena(pages, label="A", backing=self._a.ravel())
        b_arena = api.arena(pages, label="B", backing=self._b.ravel())
        c_stride = (
            ((n + wpp - 1) // wpp) * wpp if self.pad_c_rows else n
        )
        c_pages = (n * c_stride + wpp - 1) // wpp + 1
        c_arena = api.arena(c_pages, label="C")
        self.A = Matrix(a_arena.base_va, n, n, name="A")
        self.B = Matrix(b_arena.base_va, n, n, name="B")
        self.C = Matrix(c_arena.base_va, n, n, row_stride=c_stride,
                        name="C")
        self.done = api.event_count(api.arena(1, label="sync"),
                                    name="done")
        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body,
                      name=f"mm{tid}")

    def _my_rows(self, tid: int) -> list[int]:
        return [i for i in range(self.n) if i % self.p == tid]

    def _body(self, env: ThreadEnv):
        n = self.n
        for i in self._my_rows(env.tid):
            a_row = yield self.A.read_row(i)
            acc = np.zeros(n, dtype=WORD_DTYPE)
            for k in range(n):
                b_row = yield self.B.read_row(k)
                yield Compute(self.compute_per_mac * n)
                acc = (acc + int(a_row[k]) * b_row % MODULUS) % MODULUS
            yield self.C.write_row(i, acc)
        finished = yield from self.done.advance()
        if finished == self.p and self.verify_result:
            final = np.zeros((n, n), dtype=WORD_DTYPE)
            for i in range(n):
                final[i] = yield self.C.read_row(i)
            self._final = final
        return env.tid

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p)), results
        if not self.verify_result:
            return
        assert self._final is not None
        expected = matmul_reference(self._a, self._b)
        if not np.array_equal(self._final, expected):
            raise AssertionError(
                "matrix product differs from the numpy reference"
            )
