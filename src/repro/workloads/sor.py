"""Jacobi/SOR iteration: nearest-neighbour sharing on coherent memory.

Not one of the paper's three measured applications, but the canonical
NUMA workload its design discussion (sections 4.1 and 6) is about:
block-partitioned grid rows are private to their owner except for the
*boundary* rows, which the neighbouring threads read every iteration.
Under PLATINUM the interior pages migrate to their owners once and stay;
the boundary rows, written by one thread and read by one other in strict
alternation, are exactly the g(2)=2 worst case of the section 4.1
analysis -- whether they replicate profitably or freeze depends on the
page size and iteration interval, which the ablation benchmarks sweep.

The computation is integer Jacobi smoothing (average of the four
neighbours, modulo nothing -- values shrink), double-buffered between
two grids, and verified against a sequential numpy reference, so
coherence of the boundary exchanges is end-to-end checked.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import Matrix
from ..runtime.ops import Compute
from ..runtime.program import Program, ProgramAPI, ThreadEnv

#: per-point update cost (4 adds + shift + loop overhead)
DEFAULT_COMPUTE_PER_POINT = 600.0


def make_grid(n: int, seed: int = 1989) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 20, size=(n, n), dtype=WORD_DTYPE)


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential double-buffered Jacobi smoothing (integer)."""
    cur = np.array(grid, dtype=WORD_DTYPE)
    nxt = np.array(grid, dtype=WORD_DTYPE)
    for _ in range(iterations):
        nxt[1:-1, 1:-1] = (
            cur[:-2, 1:-1] + cur[2:, 1:-1]
            + cur[1:-1, :-2] + cur[1:-1, 2:]
        ) // 4
        cur, nxt = nxt, cur
    return cur


class JacobiSOR(Program):
    """Block-row-partitioned double-buffered Jacobi iteration."""

    name = "jacobi"

    def __init__(
        self,
        n: int = 64,
        iterations: int = 8,
        n_threads: Optional[int] = None,
        seed: int = 1989,
        compute_per_point: float = DEFAULT_COMPUTE_PER_POINT,
        pad_rows: bool = True,
        verify_result: bool = True,
    ) -> None:
        if n < 4:
            raise ValueError("grid must be at least 4x4")
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.n = n
        self.iterations = iterations
        self.n_threads = n_threads
        self.seed = seed
        self.compute_per_point = compute_per_point
        self.pad_rows = pad_rows
        self.verify_result = verify_result
        self._input = make_grid(n, seed)
        self._final: Optional[np.ndarray] = None

    def setup(self, api: ProgramAPI) -> None:
        n = self.n
        p = self.n_threads or api.n_processors
        # each thread owns at least one interior row
        self.p = max(1, min(p, n - 2))
        wpp = api.kernel.params.words_per_page
        stride = ((n + wpp - 1) // wpp) * wpp if self.pad_rows else n
        pages = (n * stride + wpp - 1) // wpp + 1

        backing = np.zeros(n * stride, dtype=WORD_DTYPE)
        for i in range(n):
            backing[i * stride: i * stride + n] = self._input[i]
        self.grids = []
        for tag in ("gridA", "gridB"):
            arena = api.arena(pages, label=tag, backing=backing)
            self.grids.append(
                Matrix(arena.base_va, n, n, row_stride=stride, name=tag)
            )

        sync_arena = api.arena(1, label="sync")
        self.barrier = api.barrier(sync_arena, self.p, name="step")

        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body,
                      name=f"sor{tid}")

    def _bounds(self, tid: int) -> tuple[int, int]:
        """Interior rows [start, end) owned by ``tid``."""
        interior = self.n - 2
        chunk = interior // self.p
        extra = interior % self.p
        start = 1 + tid * chunk + min(tid, extra)
        end = start + chunk + (1 if tid < extra else 0)
        return start, end

    def _body(self, env: ThreadEnv):
        n = self.n
        start, end = self._bounds(env.tid)
        src_idx, dst_idx = 0, 1
        for _step in range(self.iterations):
            src, dst = self.grids[src_idx], self.grids[dst_idx]
            above = yield src.read_row(start - 1)
            for i in range(start, end):
                here = yield src.read_row(i)
                below = yield src.read_row(i + 1)
                new = np.array(here, copy=True)
                new[1:-1] = (
                    above[1:-1] + below[1:-1] + here[:-2] + here[2:]
                ) // 4
                yield Compute(self.compute_per_point * (n - 2))
                yield dst.write_row(i, new)
                above = here
            yield from self.barrier.wait()
            src_idx, dst_idx = dst_idx, src_idx
        if env.tid == 0 and self.verify_result:
            final = np.zeros((n, n), dtype=WORD_DTYPE)
            result_grid = self.grids[src_idx]
            for i in range(n):
                final[i] = yield result_grid.read_row(i)
            self._final = final
        return env.tid

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p)), results
        if not self.verify_result:
            return
        assert self._final is not None
        expected = jacobi_reference(self._input, self.iterations)
        if not np.array_equal(self._final, expected):
            bad = np.argwhere(self._final != expected)
            raise AssertionError(
                f"Jacobi result differs from the sequential reference at "
                f"{len(bad)} points, first {bad[0]} "
                "(boundary-row coherence failure?)"
            )
