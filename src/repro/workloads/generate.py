"""Constrained-random workload generation and spec lowering.

Two halves, mirroring riescue's split between declarative test specs and
the constrained-random generator that fills them in:

* :func:`generate_spec` draws a valid :class:`WorkloadSpec` from a
  seeded RNG under a size *profile* (``smoke`` for tests/CI, ``quick``
  for benchmark sweeps).  Generation is pure and deterministic: the same
  ``(seed, profile)`` yields byte-identical spec JSON forever, which is
  what the committed golden corpus under ``tests/corpus/`` pins.

* :class:`GeneratedWorkload` lowers a spec into a normal
  :class:`~repro.runtime.program.Program`: threads draw page accesses
  from per-thread RNGs seeded by the spec, phases are separated by a
  sense-reversing barrier, and ``false_sharing`` packs one private
  counter word per thread onto a shared page -- the section 4.2 anecdote
  as an injectable ingredient.  Every operation is an ordinary
  ``runtime.ops`` yield, so generated programs get the full stack for
  free: invariant checking, telemetry, the profiler, recording/replay.

A spec's *fingerprint* is trace-level: the recorded ``repro-trace/1``
bundle's SHA-256 plus the run's protocol counters.  Two invocations that
agree on the fingerprint executed the same reference string and produced
the same simulation -- the strongest cheap equality we can assert.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_left
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.ops import Compute, FetchAdd, Read, Write
from ..runtime.program import Program, ProgramAPI, ThreadEnv
from .spec import (
    ACCESS_DISTRIBUTIONS,
    SHARING_PATTERNS,
    PhaseSpec,
    SpecError,
    WorkloadSpec,
)

FINGERPRINT_SCHEMA = "repro-genfp/1"
FINGERPRINTS_FILE = "FINGERPRINTS.json"

#: constrained-random ranges per generation profile.  Smoke stays tiny
#: on purpose: corpus fingerprinting records a full trace per spec, and
#: the cross-suite fixtures re-run specs many times.
_PROFILE_RANGES = {
    "smoke": {
        "threads": (2, 4),
        "machine": 4,
        "pages": (2, 6),
        "words": (4, 8, 16),
        "n_phases": (1, 3),
        "ops": (6, 16),
        "compute": (100.0, 200.0, 400.0),
    },
    "quick": {
        "threads": (4, 8),
        "machine": 8,
        "pages": (4, 12),
        "words": (4, 8, 16, 32),
        "n_phases": (1, 4),
        "ops": (24, 64),
        "compute": (100.0, 200.0, 400.0, 800.0),
    },
}

#: read fractions the generator draws from (read-mostly is constrained
#: to the heavy end; the write fraction is 1 - read exactly)
_READ_FRACTIONS = (0.3, 0.5, 0.7, 0.9)
_READ_MOSTLY_FRACTIONS = (0.9, 0.95)


def generate_spec(
    seed: int,
    profile: str = "smoke",
    name: Optional[str] = None,
) -> WorkloadSpec:
    """Draw one valid workload spec from ``seed`` under ``profile``.

    Deterministic and pure: no simulation runs, and the same arguments
    always produce an identical (byte-for-byte) spec.
    """
    if profile not in _PROFILE_RANGES:
        raise SpecError(
            f"unknown generation profile {profile!r} "
            f"(want one of {', '.join(sorted(_PROFILE_RANGES))})")
    ranges = _PROFILE_RANGES[profile]
    rng = random.Random(seed)
    sharing = rng.choice(SHARING_PATTERNS)
    threads = rng.randint(*ranges["threads"])
    pages = rng.randint(*ranges["pages"])
    words_per_op = rng.choice(ranges["words"])
    false_sharing = 1 if rng.random() < 0.35 else 0
    placement = rng.choice((None, None, "interleave", 0))
    zipf_s = rng.choice((1.1, 1.3, 1.5))
    n_phases = rng.randint(*ranges["n_phases"])
    phases = []
    for i in range(n_phases):
        ops = rng.randint(*ranges["ops"])
        if sharing == "read-mostly":
            read = rng.choice(_READ_MOSTLY_FRACTIONS)
        else:
            read = rng.choice(_READ_FRACTIONS)
        access = rng.choice(ACCESS_DISTRIBUTIONS)
        working_pages = (
            rng.randint(1, pages)
            if pages > 1 and rng.random() < 0.3 else None
        )
        phases.append(PhaseSpec(
            ops=ops,
            mix={"read": read, "write": round(1.0 - read, 10)},
            access=access,
            working_pages=working_pages,
            compute_ns=rng.choice(ranges["compute"]),
            barrier=True if i == 0 else rng.random() < 0.75,
        ))
    spec = WorkloadSpec(
        name=name or f"gen-{profile}-{seed:05d}-{sharing}",
        seed=seed,
        profile=profile,
        threads=threads,
        machine=ranges["machine"],
        pages=pages,
        sharing=sharing,
        words_per_op=words_per_op,
        false_sharing=false_sharing,
        placement=placement,
        zipf_s=zipf_s,
        phases=tuple(phases),
    )
    return spec.validate()


def generate_corpus(
    n: int, base_seed: int = 100, profile: str = "smoke"
) -> list:
    """``n`` specs from consecutive seeds (the golden-corpus recipe)."""
    return [generate_spec(base_seed + i, profile) for i in range(n)]


# -- lowering: spec -> Program ------------------------------------------------


class GeneratedWorkload(Program):
    """A spec lowered into a simulatable program.

    Accepts a :class:`WorkloadSpec` or its ``to_dict`` form, so bench
    point specs can embed the spec as plain JSON and rebuild the program
    inside a worker process.
    """

    def __init__(self, spec: Union[WorkloadSpec, dict]) -> None:
        if isinstance(spec, dict):
            spec = WorkloadSpec.from_dict(spec)
        else:
            spec.validate()
        self.spec = spec
        self.name = spec.name

    # -- setup ---------------------------------------------------------------

    def setup(self, api: ProgramAPI) -> None:
        spec = self.spec
        wpp = api.kernel.params.words_per_page
        self.wpp = wpp
        self.words = min(spec.words_per_op, wpp)
        shared = api.arena(
            spec.pages, label="gen-shared", placement=spec.placement
        )
        self.shared_base = shared.base_va
        self.fs_base = None
        if spec.false_sharing:
            fs_arena = api.arena(spec.false_sharing, label="gen-fs")
            self.fs_base = fs_arena.base_va
        self.barrier = None
        if any(ph.barrier for ph in spec.phases):
            sync_arena = api.arena(1, label="gen-sync")
            self.barrier = api.barrier(
                sync_arena, spec.threads, name="gen-phase"
            )
        self._zipf_cache: dict[int, list[float]] = {}
        for tid in range(spec.threads):
            api.spawn(tid % api.n_processors, self._body,
                      name=f"gen{tid}")

    # -- access drawing ------------------------------------------------------

    def _zipf_cum(self, n: int) -> list:
        cum = self._zipf_cache.get(n)
        if cum is None:
            weights = [1.0 / (i + 1) ** self.spec.zipf_s
                       for i in range(n)]
            total = sum(weights)
            acc, cum = 0.0, []
            for w in weights:
                acc += w / total
                cum.append(acc)
            self._zipf_cache[n] = cum
        return cum

    def _pool(self, tid: int, working: int) -> list:
        if self.spec.sharing == "private":
            pool = [pg for pg in range(working)
                    if pg % self.spec.threads == tid]
            return pool or [tid % working]
        return list(range(working))

    def _pick_page(self, rng, tid: int, k: int, phase: PhaseSpec,
                   pool: list, working: int) -> int:
        sharing = self.spec.sharing
        if sharing == "round-robin":
            return (tid + k) % working
        if sharing == "producer-consumer":
            return k % working
        if sharing == "hotspot" and rng.random() < 0.75:
            return pool[0]
        if phase.access == "sequential":
            return pool[k % len(pool)]
        if phase.access == "zipf":
            cum = self._zipf_cum(len(pool))
            return pool[min(bisect_left(cum, rng.random()),
                            len(pool) - 1)]
        return pool[rng.randrange(len(pool))]

    def _pick_offset(self, rng, k: int, phase: PhaseSpec) -> int:
        max_off = self.wpp - self.words
        if max_off <= 0:
            return 0
        if phase.access == "sequential":
            return (k * self.words) % (max_off + 1)
        return rng.randrange(max_off + 1)

    # -- thread body ---------------------------------------------------------

    def _body(self, env: ThreadEnv):
        spec = self.spec
        tid = env.tid
        rng = random.Random(spec.seed * 1_000_003 + tid * 9176 + 17)
        words = self.words
        fs_va = None
        if self.fs_base is not None:
            # one private counter word per thread, packed so that
            # ``threads / false_sharing`` threads share each page:
            # classic false sharing, freezable exactly like section 4.2
            fs_va = (self.fs_base
                     + (tid % spec.false_sharing) * self.wpp
                     + tid // spec.false_sharing)
        ops_done = 0
        for phase in spec.phases:
            if phase.barrier and self.barrier is not None:
                yield from self.barrier.wait()
            working = min(phase.working_pages or spec.pages, spec.pages)
            pool = self._pool(tid, working)
            read_frac = phase.mix["read"]
            for k in range(phase.ops):
                page = self._pick_page(rng, tid, k, phase, pool, working)
                offset = self._pick_offset(rng, k, phase)
                va = self.shared_base + page * self.wpp + offset
                if spec.sharing == "producer-consumer" \
                        and spec.threads > 1:
                    is_read = tid % 2 == 1
                else:
                    is_read = rng.random() < read_frac
                if is_read:
                    yield Read(va, words)
                elif words == 1:
                    yield Write(va, (k + tid + 1) % 100_000)
                else:
                    yield Write(va, np.full(
                        words, (k + tid + 1) % 100_000,
                        dtype=WORD_DTYPE))
                if phase.compute_ns:
                    yield Compute(phase.compute_ns)
                if fs_va is not None:
                    yield FetchAdd(fs_va, 1)
                ops_done += 1
        fs_val = None
        if fs_va is not None:
            val = yield Read(fs_va, 1)
            fs_val = int(val[0])
        return (tid, ops_done, fs_val)

    # -- verification --------------------------------------------------------

    def verify(self, results) -> None:
        spec = self.spec
        expected_ops = spec.total_ops_per_thread
        tids = sorted(r[0] for r in results)
        assert tids == list(range(spec.threads)), tids
        for tid, ops_done, fs_val in results:
            assert ops_done == expected_ops, (tid, ops_done, expected_ops)
            if spec.false_sharing:
                # the falsely-shared counter saw every one of my ops and
                # none of anyone else's: the words stayed coherent
                assert fs_val == expected_ops, (tid, fs_val, expected_ops)


def program_for_spec(spec: Union[WorkloadSpec, dict]) -> GeneratedWorkload:
    """Lower a spec (object or dict) into a fresh program instance."""
    return GeneratedWorkload(spec)


# -- running and fingerprinting -----------------------------------------------


def bench_spec_for(
    spec: WorkloadSpec,
    policy: Optional[str] = None,
    policy_args: Optional[dict] = None,
    machine: Optional[int] = None,
) -> dict:
    """The ``{"kind": "run"}`` bench point spec that simulates ``spec``
    (also what the recorder consumes)."""
    point = {
        "kind": "run",
        "workload": "generated",
        "machine": machine if machine is not None else spec.machine,
        "args": {"spec": spec.to_dict()},
    }
    if policy is not None:
        point["policy"] = policy
        if policy_args:
            point["policy_args"] = dict(policy_args)
    return point


def run_spec(
    spec: Union[WorkloadSpec, dict],
    policy: Optional[str] = None,
    policy_args: Optional[dict] = None,
    machine: Optional[int] = None,
    check_invariants: bool = False,
    trace: bool = False,
    defrost: bool = True,
    defrost_period=None,
):
    """Simulate one spec; returns ``(kernel, RunResult)``.

    ``check_invariants`` hooks the global invariant checker after every
    protocol action (the ``repro gen run --check-invariants`` path).
    """
    from ..policy.registry import make_policy
    from ..runtime.run import make_kernel, run_program

    if isinstance(spec, dict):
        spec = WorkloadSpec.from_dict(spec)
    kernel = make_kernel(
        n_processors=machine if machine is not None else spec.machine,
        policy=make_policy(policy, policy_args),
        trace=trace,
        defrost_enabled=defrost,
        defrost_period=defrost_period,
    )
    checker = None
    if check_invariants:
        from ..check import install_invariant_checker

        checker = install_invariant_checker(kernel.coherent)
    result = run_program(kernel, GeneratedWorkload(spec))
    if checker is not None:
        checker.check()
    return kernel, result


def fingerprint_spec(spec: Union[WorkloadSpec, dict]) -> dict:
    """Record the spec's run once and reduce it to a trace-level
    fingerprint: spec bytes, ``repro-trace/1`` bundle bytes (both as
    SHA-256) and the run's full protocol counter dict.  Byte-stable:
    two invocations anywhere must agree exactly."""
    import hashlib

    from ..replay import record_spec

    if isinstance(spec, dict):
        spec = WorkloadSpec.from_dict(spec)
    bundle, _result = record_spec(bench_spec_for(spec))
    return {
        "schema": FINGERPRINT_SCHEMA,
        "spec_sha256": hashlib.sha256(
            spec.to_json().encode()).hexdigest(),
        "trace_sha256": hashlib.sha256(bundle.to_bytes()).hexdigest(),
        "n_ops": bundle.n_ops,
        "n_threads": bundle.n_threads,
        "events_executed": bundle.expected["events_executed"],
        "counters": bundle.expected["counters"],
    }


# -- the golden corpus --------------------------------------------------------


def corpus_paths(directory: Union[str, Path]) -> list:
    """Spec files in a corpus directory, sorted by name."""
    directory = Path(directory)
    return sorted(
        p for p in directory.glob("*.json")
        if p.name != FINGERPRINTS_FILE
    )


def write_corpus(
    directory: Union[str, Path],
    n: int = 20,
    base_seed: int = 100,
    profile: str = "smoke",
) -> list:
    """Generate ``n`` specs plus their fingerprints into ``directory``.

    This is the one true way to (re)build ``tests/corpus/``: spec files
    named after the spec, and ``FINGERPRINTS.json`` mapping spec name to
    its trace-level fingerprint.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    specs = generate_corpus(n, base_seed, profile)
    written = [spec.save(directory / f"{spec.name}.json")
               for spec in specs]
    fingerprints = {spec.name: fingerprint_spec(spec) for spec in specs}
    fp_path = directory / FINGERPRINTS_FILE
    fp_path.write_text(
        json.dumps(fingerprints, sort_keys=True, indent=2) + "\n")
    written.append(fp_path)
    return written


def verify_corpus(
    directory: Union[str, Path], fingerprints: bool = True
) -> list:
    """Drift-check a corpus directory; returns a list of one-line
    problems (empty = everything regenerates and re-simulates exactly).

    Mirrors the ``BENCH_smoke.json`` contract: generated spec files must
    equal ``generate_spec(seed, profile)`` byte-for-byte, and (when
    ``fingerprints``) re-recording each spec must reproduce the
    committed trace hash and counters exactly.
    """
    directory = Path(directory)
    problems: list[str] = []
    paths = corpus_paths(directory)
    if not paths:
        return [f"{directory}: no spec files found"]
    committed: dict = {}
    fp_path = directory / FINGERPRINTS_FILE
    if fingerprints:
        if fp_path.exists():
            committed = json.loads(fp_path.read_text())
        else:
            problems.append(f"{fp_path.name}: missing")
    seen_names = set()
    for path in paths:
        try:
            spec = WorkloadSpec.load(path)
        except SpecError as exc:
            problems.append(str(exc))
            continue
        seen_names.add(spec.name)
        if path.stem != spec.name:
            problems.append(
                f"{path.name}: file name does not match spec name "
                f"{spec.name!r}")
        if spec.profile != "custom":
            regenerated = generate_spec(spec.seed, spec.profile)
            if regenerated.to_json() != path.read_text():
                problems.append(
                    f"{path.name}: bytes differ from generate_spec("
                    f"seed={spec.seed}, profile={spec.profile!r})")
                continue
        if fingerprints and committed:
            want = committed.get(spec.name)
            if want is None:
                problems.append(
                    f"{path.name}: no committed fingerprint for "
                    f"{spec.name!r}")
            elif fingerprint_spec(spec) != want:
                problems.append(
                    f"{path.name}: fingerprint drifted (the generated "
                    "program no longer simulates to the committed "
                    "trace/counters)")
    for name in sorted(set(committed) - seen_names):
        problems.append(
            f"{FINGERPRINTS_FILE}: fingerprint for {name!r} has no "
            "spec file")
    return problems
