"""Parallel merge sort (paper Figure 5 and section 5.2).

A tree of merge operations, each performed by a single thread, as in
Anderson's Sequent Symmetry study that the paper compares against.  With
``p`` leaf threads, thread ``t`` first sorts its contiguous chunk; then in
round ``r`` the threads whose index is a multiple of ``2^r`` merge their
run with their partner's.  Runs ping-pong between the data array and a
scratch array so every merge reads two sorted runs linearly and writes one
linearly -- the access pattern the paper highlights: during each merge,
half of the input is already in the merging processor's local memory, and
the linear scan touches every word that each coherent-page fault
prefetched.

Synchronization is an event count per tree node.  The sorted result is
verified against ``numpy.sort`` of the input -- another end-to-end
coherence proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import WordArray
from ..runtime.ops import Compute
from ..runtime.program import Program, ProgramAPI, ThreadEnv

#: comparison-and-move cost per element merged/sorted, beyond the memory
#: references themselves.  Not reported by the paper; a fraction of a
#: microsecond per element keeps the program memory-bound.
DEFAULT_COMPUTE_PER_ELEMENT = 400.0


def make_input(n: int, seed: int = 1989) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**31 - 1, size=n, dtype=WORD_DTYPE)


@dataclass
class MergeStats:
    local_sorts: int = 0
    merges: int = 0


class MergeSort(Program):
    """Tree-structured parallel merge sort."""

    name = "mergesort"

    def __init__(
        self,
        n: int = 65536,
        n_threads: Optional[int] = None,
        seed: int = 1989,
        compute_per_element: float = DEFAULT_COMPUTE_PER_ELEMENT,
        verify_result: bool = True,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two elements")
        self.n = n
        self.n_threads = n_threads
        self.seed = seed
        self.compute_per_element = compute_per_element
        self.verify_result = verify_result
        self._input = make_input(n, seed)
        self._final: Optional[np.ndarray] = None
        self.stats = MergeStats()

    def setup(self, api: ProgramAPI) -> None:
        p = self.n_threads or api.n_processors
        # the merge tree needs a power-of-two thread count
        p = 1 << int(math.floor(math.log2(max(1, p))))
        self.p = p
        self.rounds = int(math.log2(p))
        n = self.n
        wpp = api.kernel.params.words_per_page
        pages = (n + wpp - 1) // wpp + 1
        data_arena = api.arena(pages, label="data", backing=self._input)
        self.data = WordArray(data_arena.base_va, n, name="data")
        scratch_arena = api.arena(pages, label="scratch")
        self.scratch = WordArray(scratch_arena.base_va, n, name="scratch")

        sync_arena = api.arena(1, label="sync")
        self.ready = [
            api.event_count(sync_arena, name=f"ready{t}")
            for t in range(p)
        ]
        self.wpp = wpp

        for tid in range(p):
            api.spawn(
                tid % api.n_processors, self._body, name=f"merge{tid}"
            )

    # -- helpers: batched page-wise array IO -----------------------------------

    def _read_run(self, array: WordArray, start: int, length: int):
        """Read a run page-batch by page-batch; returns a numpy array."""
        out = np.empty(length, dtype=WORD_DTYPE)
        pos = 0
        while pos < length:
            take = min(self.wpp, length - pos)
            chunk = yield array.read(start + pos, take)
            out[pos: pos + take] = chunk
            pos += take
        return out

    def _write_run(self, array: WordArray, start: int, values: np.ndarray):
        pos = 0
        while pos < len(values):
            take = min(self.wpp, len(values) - pos)
            yield array.write(start + pos, values[pos: pos + take])
            pos += take

    def _bounds(self, tid: int) -> tuple[int, int]:
        """Chunk [start, end) owned by leaf ``tid`` (balanced split)."""
        chunk = self.n // self.p
        extra = self.n % self.p
        start = tid * chunk + min(tid, extra)
        end = start + chunk + (1 if tid < extra else 0)
        return start, end

    def _span(self, tid: int, round_: int) -> tuple[int, int]:
        """The run [start, end) thread ``tid`` holds after ``round_``."""
        group = 1 << round_
        first = tid
        last = min(tid + group - 1, self.p - 1)
        start, _ = self._bounds(first)
        _, end = self._bounds(last)
        return start, end

    # -- thread body -----------------------------------------------------------------

    def _body(self, env: ThreadEnv):
        tid = env.tid
        start, end = self._bounds(tid)
        length = end - start

        # leaf phase: local sort of my chunk
        chunk = yield from self._read_run(self.data, start, length)
        yield Compute(
            self.compute_per_element
            * length
            * max(1.0, math.log2(max(2, length)))
        )
        chunk = np.sort(chunk)
        yield from self._write_run(self.data, start, chunk)
        self.stats.local_sorts += 1
        yield from self.ready[tid].advance()

        # merge rounds: after round r the run lives in data (r even) or
        # scratch (r odd); sources of round r are in the round r-1 home
        src, dst = self.data, self.scratch
        for r in range(1, self.rounds + 1):
            stride = 1 << r
            if tid % stride != 0:
                break
            partner = tid + (stride >> 1)
            # wait until the partner finished round r-1
            yield from self.ready[partner].await_at_least(r)
            a_start, a_end = self._span(tid, r - 1)
            b_start, b_end = self._span(partner, r - 1)
            left = yield from self._read_run(src, a_start, a_end - a_start)
            right = yield from self._read_run(src, b_start, b_end - b_start)
            merged = np.concatenate([left, right])
            merged.sort(kind="mergesort")
            yield Compute(self.compute_per_element * len(merged))
            yield from self._write_run(dst, a_start, merged)
            self.stats.merges += 1
            yield from self.ready[tid].advance()
            src, dst = dst, src

        if tid == 0:
            final = yield from self._read_run(src, 0, self.n)
            self._final = final
        return tid

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p)), results
        if not self.verify_result:
            return
        assert self._final is not None
        expected = np.sort(self._input)
        if not np.array_equal(self._final, expected):
            raise AssertionError(
                "merge sort output is not the sorted input "
                "(coherence or algorithm failure)"
            )
