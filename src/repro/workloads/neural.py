"""Recurrent backpropagation network simulator (paper Figure 6, §5.3).

The paper's third application is a neural-network simulator "parallelized
by simple for-loop parallelization on units", written by a researcher with
no Butterfly experience: each processor continually simulates a set of
units, relying only on the atomicity of word operations when touching
shared data, with no other synchronization.  It operates on very little
data at very fine granularity, so PLATINUM "quickly gives up": the shared
activation and weight pages are frozen in place and every incremental
processor contributes about half of an all-local processor.

We simulate a three-layer recurrent network learning an encoder problem
(paper: 40 units, 16 input/output pairs) in fixed-point integer
arithmetic.  Activations of all units share a page or two; weights are
partitioned by unit but many units' weight rows share pages -- exactly the
fine-grain write-sharing that defeats replication.

Verification is structural (the run completes, activations stay bounded,
every unit was updated the requested number of times); the paper itself
notes the unsynchronized simulator is non-deterministic, so exact-value
verification is only meaningful on one processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import Matrix, WordArray
from ..runtime.ops import Compute
from ..runtime.program import Program, ProgramAPI, ThreadEnv

#: fixed-point scale for activations/weights
SCALE = 1024

#: per-connection compute cost: a fixed/floating-point multiply-accumulate
#: plus loop overhead.  On a 16.67 MHz MC68020 (with MC68881-class
#: arithmetic) a MAC is several microseconds, which is what makes the
#: all-remote frozen-page regime cost about twice the all-local one --
#: the paper's "each incremental processor contributes about 1/2 that of
#: a processor that makes only local memory references".
DEFAULT_COMPUTE_PER_CONNECTION = 5000.0


def _squash(x: np.ndarray) -> np.ndarray:
    """A cheap bounded integer 'sigmoid': clip to +/- SCALE."""
    return np.clip(x // SCALE, -SCALE, SCALE)


@dataclass
class NeuralStats:
    unit_updates: int = 0
    weight_updates: int = 0


class NeuralNetSimulator(Program):
    """For-loop-parallel recurrent network training."""

    name = "neural"

    def __init__(
        self,
        n_units: int = 40,
        n_patterns: int = 16,
        epochs: int = 25,
        n_threads: Optional[int] = None,
        seed: int = 1989,
        compute_per_connection: float = DEFAULT_COMPUTE_PER_CONNECTION,
    ) -> None:
        if n_units < 2:
            raise ValueError("need at least two units")
        self.n_units = n_units
        self.n_patterns = n_patterns
        self.epochs = epochs
        self.n_threads = n_threads
        self.seed = seed
        self.compute_per_connection = compute_per_connection
        self.stats = NeuralStats()
        rng = np.random.default_rng(seed)
        self._w0 = rng.integers(
            -SCALE, SCALE, size=(n_units, n_units), dtype=WORD_DTYPE
        )
        self._patterns = rng.integers(
            -SCALE, SCALE, size=(n_patterns, n_units), dtype=WORD_DTYPE
        )
        self._final_activations: Optional[np.ndarray] = None

    def setup(self, api: ProgramAPI) -> None:
        p = self.n_threads or api.n_processors
        self.p = min(p, self.n_units)
        u = self.n_units

        # activations: all units share one small array (fine granularity!)
        act_arena = api.arena(
            (u + api.kernel.params.words_per_page - 1)
            // api.kernel.params.words_per_page + 1,
            label="act",
        )
        self.act = WordArray.alloc(act_arena, u, name="act")

        # weights: unit i's incoming weights are row i
        wpp = api.kernel.params.words_per_page
        w_pages = (u * u + wpp - 1) // wpp + 1
        w_arena = api.arena(
            w_pages, label="weights", backing=self._w0.ravel()
        )
        self.weights = Matrix(w_arena.base_va, u, u, name="W")

        # training patterns: read-only, should replicate everywhere
        pat_pages = (
            self.n_patterns * u + wpp - 1
        ) // wpp + 1
        pat_arena = api.arena(
            pat_pages, label="patterns", backing=self._patterns.ravel()
        )
        self.patterns = Matrix(
            pat_arena.base_va, self.n_patterns, u, name="patterns"
        )

        for tid in range(self.p):
            api.spawn(
                tid % api.n_processors, self._body, name=f"nn{tid}"
            )

    def _my_units(self, tid: int) -> list[int]:
        return [i for i in range(self.n_units) if i % self.p == tid]

    def _body(self, env: ThreadEnv):
        tid = env.tid
        u = self.n_units
        mine = self._my_units(tid)
        updates = 0
        for epoch in range(self.epochs):
            pattern_row = epoch % self.n_patterns
            for unit in mine:
                # forward: activation of 'unit' from all activations
                acts = yield self.act.read(0, u)
                wrow = yield self.weights.read_row(unit)
                target = yield self.patterns.read(pattern_row, unit)
                yield Compute(self.compute_per_connection * u)
                net = int(np.dot(acts, wrow) % (1 << 40))
                new_act = int(_squash(np.array([net]))[0])
                yield self.act.write(unit, new_act)
                # backward: nudge weights toward the target (fine-grain
                # writes into pages shared with other units' rows)
                err = int(target[0]) - new_act
                delta = (err * acts) // (SCALE * 4)
                yield Compute(self.compute_per_connection * u)
                yield self.weights.write_row(
                    unit, (wrow + delta) % (1 << 30)
                )
                updates += 1
                self.stats.unit_updates += 1
                self.stats.weight_updates += 1
        if tid == 0:
            final = yield self.act.read(0, u)
            self._final_activations = np.array(final, copy=True)
        return updates

    def verify(self, results) -> None:
        expected = [
            len(self._my_units(t)) * self.epochs for t in range(self.p)
        ]
        assert results == expected, (results, expected)
        if self._final_activations is not None:
            acts = self._final_activations
            assert np.all(np.abs(acts) <= SCALE), (
                "activations escaped the squash bound"
            )
