"""Gaussian elimination (paper Figure 1 and section 5.1).

The paper's program "simulates Gaussian elimination without pivoting on
dense matrices ... it uses integer rather than floating-point operations,
thus emphasizing the relative impact of memory performance".  The
PLATINUM implementation is coarse-grain, modelled on LeBlanc's most
efficient Uniform System version: one thread per processor, rows
statically allocated (cyclically, for load balance), and in each round
every thread reads the pivot row and eliminates its own rows below it.
Threads synchronize through an array of event counts -- one per pivot row
-- and, as the paper reports, that event-count page is the only page the
replication policy freezes.

Integer arithmetic is done modulo a large prime so that the computation
is exactly reproducible and the final matrix can be verified against a
sequential elimination -- an end-to-end proof that the coherent memory
kept every replica coherent.

Allocation follows the section 6 discipline by default: rows padded to
page boundaries (each 800-word row of the paper's 800x800 input occupies
its own 1024-word page), the event-count array on its own pages, and each
thread's private variables in a private arena.  ``pad_rows=False``
recreates the false-sharing layout for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import Matrix, WordArray
from ..runtime.ops import Compute, Read, Write
from ..runtime.program import Program, ProgramAPI, ThreadEnv
from ..runtime.sync import EventCount

#: modulus for the integer arithmetic: products stay within int64
MODULUS = 2_147_483_647

#: integer update cost per matrix element on a 16.67 MHz MC68020,
#: excluding the memory references themselves (they are simulated).
#: The paper does not report it; 500 ns/element keeps the program
#: memory-bound the way the paper's integer "simulated elimination" was.
DEFAULT_COMPUTE_PER_WORD = 500.0


def eliminate_reference(matrix: np.ndarray) -> np.ndarray:
    """Sequential reference elimination (same modular arithmetic)."""
    a = np.array(matrix, dtype=WORD_DTYPE) % MODULUS
    n = len(a)
    for k in range(n - 1):
        pkk = int(a[k, k])
        pivot = a[k, k:].copy()
        for i in range(k + 1, n):
            rik = int(a[i, k])
            a[i, k:] = (pkk * a[i, k:] - rik * pivot) % MODULUS
    return a


def make_input(n: int, seed: int = 1989) -> np.ndarray:
    """The random integer input matrix (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    return rng.integers(1, MODULUS, size=(n, n), dtype=WORD_DTYPE)


@dataclass
class GaussStats:
    """Per-run counters gathered by the program itself."""

    rounds: int = 0
    pivot_reads: int = 0


class GaussianElimination(Program):
    """Coarse-grain parallel Gaussian elimination on PLATINUM."""

    name = "gauss"

    def __init__(
        self,
        n: int = 128,
        n_threads: Optional[int] = None,
        seed: int = 1989,
        compute_per_word: float = DEFAULT_COMPUTE_PER_WORD,
        pad_rows: bool = True,
        verify_result: bool = True,
        colocate_lock_with_size: bool = False,
        matrix_placement=None,
        pretouch_rows: bool = False,
        pivot_to_local_buffer: bool = False,
    ) -> None:
        """Parameters
        ----------
        n:
            Matrix dimension (the paper uses 800).
        n_threads:
            One per processor by default.
        pad_rows:
            Pad each row to a page boundary (the intelligent-allocation
            discipline of section 6).  False recreates row false-sharing.
        verify_result:
            Check the final matrix against a sequential elimination.
        colocate_lock_with_size:
            Recreate the section 4.2 anecdote: place the startup
            spin-lock barrier word on the same page as the matrix-size
            variable read in every inner loop, so spinning freezes the
            page and every thread's inner loop goes remote.
        matrix_placement:
            Initial placement of the matrix pages (forwarded to the
            memory object).  ``"interleave"`` with a never-cache policy
            reproduces the Uniform System's scattered matrix.
        pretouch_rows:
            Each thread writes its rows once before the start barrier, so
            first-touch placement puts them locally (hand-tuned static
            placement).
        pivot_to_local_buffer:
            The Uniform System hand optimization: copy the pivot row into
            a private per-thread buffer each round instead of relying on
            the memory system.
        """
        if n < 2:
            raise ValueError("matrix must be at least 2x2")
        self.n = n
        self.n_threads = n_threads
        self.seed = seed
        self.compute_per_word = compute_per_word
        self.pad_rows = pad_rows
        self.verify_result = verify_result
        self.colocate_lock_with_size = colocate_lock_with_size
        self.matrix_placement = matrix_placement
        self.pretouch_rows = pretouch_rows
        self.pivot_to_local_buffer = pivot_to_local_buffer
        self.stats = GaussStats()
        self._input = make_input(n, seed)
        self._final: Optional[np.ndarray] = None

    # -- setup ---------------------------------------------------------------

    def setup(self, api: ProgramAPI) -> None:
        n = self.n
        p = self.n_threads or api.n_processors
        self.p = p
        wpp = api.kernel.params.words_per_page
        stride = ((n + wpp - 1) // wpp) * wpp if self.pad_rows else n
        matrix_pages = (n * stride + wpp - 1) // wpp
        matrix_arena = api.arena(
            matrix_pages + 1, label="matrix",
            backing=self._backing(n, stride),
            placement=self.matrix_placement,
        )
        self.matrix = Matrix(
            matrix_arena.base_va, n, n, row_stride=stride, name="A"
        )
        self.matrix_arena = matrix_arena

        sync_pages = (n + wpp - 1) // wpp + 1
        sync_arena = api.arena(sync_pages, label="evc")
        self.row_ready = WordArray.alloc(sync_arena, n, name="row_ready")
        self.row_ready_evc = [
            EventCount(api.engine, self.row_ready.va(k), f"row{k}")
            for k in range(n)
        ]
        self.done = api.event_count(sync_arena, name="done")

        # the section 4.2 anecdote: a "matrix size" word read in every
        # inner loop, optionally co-located with the startup barrier lock
        misc_arena = api.arena(2, label="misc")
        self.size_va = misc_arena.alloc(1, page_aligned=True)
        if self.colocate_lock_with_size:
            self.start_barrier = api.barrier(
                misc_arena, p, name="start", page_aligned=False
            )
        else:
            self.start_barrier = api.barrier(misc_arena, p, name="start")

        # Uniform System hand optimization: a private local pivot buffer
        self.pivot_buffer_va: list[int] = []
        if self.pivot_to_local_buffer:
            row_pages = (n + wpp - 1) // wpp
            for tid in range(p):
                buf = api.arena(
                    row_pages, label=f"pbuf{tid}",
                    placement=tid % api.n_processors,
                )
                self.pivot_buffer_va.append(buf.alloc(n, page_aligned=True))

        for tid in range(p):
            api.spawn(tid % api.n_processors, self._body, name=f"gauss{tid}")

    def _backing(self, n: int, stride: int) -> np.ndarray:
        backing = np.zeros(n * stride, dtype=WORD_DTYPE)
        for i in range(n):
            backing[i * stride: i * stride + n] = self._input[i]
        return backing

    def _owner(self, row: int) -> int:
        return row % self.p

    # -- thread body -------------------------------------------------------------

    def _body(self, env: ThreadEnv):
        n = self.n
        me = env.tid

        # startup: one thread publishes the matrix size; all read it
        if me == 0:
            yield Write(self.size_va, n)
        if self.pretouch_rows:
            # hand-tuned static placement: touch my rows so first-touch
            # allocation puts them in my local memory
            for i in range(n):
                if self._owner(i) == me:
                    yield Read(self.matrix.va(i, 0), 1)
        yield from self.start_barrier.wait()
        size = yield Read(self.size_va, 1)
        n = int(size[0])

        my_rows = [i for i in range(n) if self._owner(i) == me]
        for k in range(n - 1):
            if self._owner(k) == me:
                # my row k is final: announce the pivot row
                yield from self.row_ready_evc[k].advance()
            else:
                yield from self.row_ready_evc[k].await_at_least(1)
            rows_below = [i for i in my_rows if i > k]
            if not rows_below:
                continue
            # each inner iteration re-reads the shared size variable, as
            # in the paper's termination test (cheap when replicated,
            # disastrous when its page is frozen)
            pivot = yield self.matrix.read_row(k, start=k)
            self.stats.pivot_reads += 1
            if self.pivot_to_local_buffer:
                # explicit copy into the private buffer (Uniform System
                # style); PLATINUM makes this redundant via replication
                yield Write(self.pivot_buffer_va[me], pivot)
            pkk = int(pivot[0])
            for i in rows_below:
                yield Read(self.size_va, 1)
                row = yield self.matrix.read_row(i, start=k)
                rik = int(row[0])
                updated = (pkk * row - rik * pivot) % MODULUS
                yield Compute(self.compute_per_word * len(updated))
                yield self.matrix.write_row(i, updated, start=k)
            if self._owner(k) == me:
                self.stats.rounds += 1

        done = yield from self.done.advance()
        if done == self.p and self.verify_result:
            # last finisher reads back the matrix for verification
            final = np.zeros((n, n), dtype=WORD_DTYPE)
            for i in range(n):
                final[i] = yield self.matrix.read_row(i)
            self._final = final
        return me

    # -- verification ----------------------------------------------------------------

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p)), results
        if not self.verify_result:
            return
        assert self._final is not None, "no thread read back the matrix"
        expected = eliminate_reference(self._input)
        if not np.array_equal(self._final, expected):
            bad = np.argwhere(self._final != expected)
            raise AssertionError(
                f"elimination result differs from the sequential "
                f"reference at {len(bad)} positions, first {bad[0]}"
            )
