"""The declarative workload specification format (``repro-workload/1``).

The paper's evaluation rests on a handful of hand-written programs; the
spec layer turns "a workload" into a first-class, checkable object
instead: a :class:`WorkloadSpec` names a sharing pattern, a working set,
a read/write mix, a phase structure and optional false-sharing
injection, and the generator (:mod:`repro.workloads.generate`) lowers it
into a simulatable :class:`~repro.runtime.program.Program`.  The design
follows riescue's declarative-spec + constrained-random test style --
specs are data, validated before use, serialized canonically so the
same spec is byte-identical everywhere it is written.

Serialization is strict and canonical on purpose:

* ``to_json`` emits sorted-key, two-space-indented JSON with a trailing
  newline, so a committed corpus file equals its regeneration
  byte-for-byte (the golden-corpus drift check relies on this);
* ``from_dict`` rejects unknown keys and malformed values with one-line
  :class:`SpecError` messages, matching the ``repro explain`` exit-2
  error convention at the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

SPEC_SCHEMA = "repro-workload/1"

#: how threads pick pages out of the shared working set
SHARING_PATTERNS = (
    "private",            # pages partitioned per thread: no interference
    "uniform",            # every thread draws any page
    "hotspot",            # most accesses pile onto page 0
    "round-robin",        # threads march over the pages, offset by tid
    "producer-consumer",  # even tids write, odd tids read
    "read-mostly",        # uniform pages, generation forces a read-heavy mix
)

#: how an access's page/offset is drawn within the allowed pages
ACCESS_DISTRIBUTIONS = ("uniform", "sequential", "zipf")

#: spec generation size profiles (see ``generate.PROFILES``)
PROFILES = ("smoke", "quick", "custom")


class SpecError(ValueError):
    """A malformed workload spec (one-line message, CLI exits 2)."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a generated workload: every thread performs ``ops``
    operations drawn from this phase's mix and access distribution."""

    ops: int
    #: operation mix; must have exactly ``read`` and ``write`` keys
    #: summing to 1.0
    mix: dict = field(default_factory=lambda: {"read": 0.5, "write": 0.5})
    access: str = "uniform"
    #: use only the first N pages of the working set (None = all)
    working_pages: Optional[int] = None
    #: think time per operation, nanoseconds
    compute_ns: float = 200.0
    #: synchronize all threads on a barrier before entering this phase
    barrier: bool = True

    def validate(self, context: str = "phase") -> None:
        _require(isinstance(self.ops, int) and self.ops >= 1,
                 f"{context}: ops must be at least 1, got {self.ops!r}")
        _require(isinstance(self.mix, dict)
                 and set(self.mix) == {"read", "write"},
                 f"{context}: mix must have exactly 'read' and 'write' "
                 f"keys, got {sorted(self.mix) if isinstance(self.mix, dict) else self.mix!r}")
        for key, value in self.mix.items():
            _require(isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
                     f"{context}: mix[{key!r}] must be in [0, 1], "
                     f"got {value!r}")
        total = sum(self.mix.values())
        _require(abs(total - 1.0) < 1e-9,
                 f"{context}: mix must sum to 1, got {total:g}")
        _require(self.access in ACCESS_DISTRIBUTIONS,
                 f"{context}: unknown access distribution "
                 f"{self.access!r} (want one of "
                 f"{', '.join(ACCESS_DISTRIBUTIONS)})")
        if self.working_pages is not None:
            _require(isinstance(self.working_pages, int)
                     and self.working_pages >= 1,
                     f"{context}: working_pages must be at least 1, "
                     f"got {self.working_pages!r}")
        _require(isinstance(self.compute_ns, (int, float))
                 and self.compute_ns >= 0,
                 f"{context}: compute_ns must be non-negative, "
                 f"got {self.compute_ns!r}")
        _require(isinstance(self.barrier, bool),
                 f"{context}: barrier must be true or false, "
                 f"got {self.barrier!r}")

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "mix": {"read": self.mix["read"], "write": self.mix["write"]},
            "access": self.access,
            "working_pages": self.working_pages,
            "compute_ns": self.compute_ns,
            "barrier": self.barrier,
        }

    @classmethod
    def from_dict(cls, d: dict, context: str = "phase") -> "PhaseSpec":
        _require(isinstance(d, dict),
                 f"{context}: expected an object, got {type(d).__name__}")
        unknown = set(d) - {"ops", "mix", "access", "working_pages",
                            "compute_ns", "barrier"}
        _require(not unknown,
                 f"{context}: unknown key(s) {sorted(unknown)}")
        _require("ops" in d, f"{context}: missing required key 'ops'")
        phase = cls(
            ops=d["ops"],
            mix=dict(d.get("mix", {"read": 0.5, "write": 0.5})),
            access=d.get("access", "uniform"),
            working_pages=d.get("working_pages"),
            compute_ns=d.get("compute_ns", 200.0),
            barrier=d.get("barrier", True),
        )
        phase.validate(context)
        return phase


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative workload: what to share, how hard, and in
    what shape -- everything the generator needs to lower a program."""

    name: str
    #: generation seed; also seeds every thread's access RNG at run time
    seed: int
    threads: int
    #: processors in the simulated machine this spec is sized for
    machine: int
    #: shared working-set size in coherent pages
    pages: int
    sharing: str = "uniform"
    #: words per read/write run
    words_per_op: int = 8
    #: falsely-shared pages to inject: each packs one private slot word
    #: per thread onto the same page (0 = no injection)
    false_sharing: int = 0
    #: initial page placement: null = first-touch, "interleave" =
    #: round-robin scatter, an integer = pin to that memory module
    placement: Union[None, str, int] = None
    #: zipf exponent for ``access: zipf`` phases
    zipf_s: float = 1.2
    #: generation profile this spec was drawn from ("custom" for
    #: hand-written specs; anything else must regenerate byte-identically)
    profile: str = "custom"
    phases: tuple = field(
        default_factory=lambda: (PhaseSpec(ops=16),)
    )

    # -- validation ----------------------------------------------------------

    def validate(self) -> "WorkloadSpec":
        ctx = f"spec {self.name!r}" if self.name else "spec"
        _require(isinstance(self.name, str) and self.name,
                 "spec: name must be a non-empty string")
        _require(isinstance(self.seed, int) and self.seed >= 0,
                 f"{ctx}: seed must be a non-negative integer, "
                 f"got {self.seed!r}")
        _require(isinstance(self.threads, int) and self.threads >= 1,
                 f"{ctx}: threads must be at least 1, got {self.threads!r}")
        _require(isinstance(self.machine, int) and self.machine >= 1,
                 f"{ctx}: machine must be at least 1 processor, "
                 f"got {self.machine!r}")
        _require(isinstance(self.pages, int) and self.pages >= 1,
                 f"{ctx}: pages must be at least 1, got {self.pages!r}")
        _require(self.sharing in SHARING_PATTERNS,
                 f"{ctx}: unknown sharing pattern {self.sharing!r} "
                 f"(want one of {', '.join(SHARING_PATTERNS)})")
        _require(isinstance(self.words_per_op, int)
                 and self.words_per_op >= 1,
                 f"{ctx}: words_per_op must be at least 1, "
                 f"got {self.words_per_op!r}")
        _require(isinstance(self.false_sharing, int)
                 and self.false_sharing >= 0,
                 f"{ctx}: false_sharing must be a non-negative page "
                 f"count, got {self.false_sharing!r}")
        _require(
            self.placement is None
            or self.placement == "interleave"
            or (isinstance(self.placement, int)
                and not isinstance(self.placement, bool)
                and self.placement >= 0),
            f"{ctx}: placement must be null, \"interleave\" or a "
            f"module index, got {self.placement!r}")
        _require(isinstance(self.zipf_s, (int, float)) and self.zipf_s > 0,
                 f"{ctx}: zipf_s must be positive, got {self.zipf_s!r}")
        _require(self.profile in PROFILES,
                 f"{ctx}: unknown profile {self.profile!r} "
                 f"(want one of {', '.join(PROFILES)})")
        _require(isinstance(self.phases, tuple) and len(self.phases) >= 1,
                 f"{ctx}: phases must be a non-empty list")
        for i, phase in enumerate(self.phases):
            _require(isinstance(phase, PhaseSpec),
                     f"{ctx}: phases[{i}] is not a phase spec")
            phase.validate(f"{ctx}: phases[{i}]")
            if phase.working_pages is not None:
                _require(phase.working_pages <= self.pages,
                         f"{ctx}: phases[{i}]: working_pages "
                         f"{phase.working_pages} exceeds the working "
                         f"set ({self.pages} pages)")
        return self

    @property
    def total_ops_per_thread(self) -> int:
        return sum(ph.ops for ph in self.phases)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "profile": self.profile,
            "threads": self.threads,
            "machine": self.machine,
            "pages": self.pages,
            "sharing": self.sharing,
            "words_per_op": self.words_per_op,
            "false_sharing": self.false_sharing,
            "placement": self.placement,
            "zipf_s": self.zipf_s,
            "phases": [ph.to_dict() for ph in self.phases],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        _require(isinstance(d, dict),
                 f"spec: expected an object, got {type(d).__name__}")
        schema = d.get("schema", SPEC_SCHEMA)
        _require(schema == SPEC_SCHEMA,
                 f"spec: schema {schema!r} is not {SPEC_SCHEMA!r}")
        known = {"schema", "name", "seed", "profile", "threads",
                 "machine", "pages", "sharing", "words_per_op",
                 "false_sharing", "placement", "zipf_s", "phases"}
        unknown = set(d) - known
        _require(not unknown, f"spec: unknown key(s) {sorted(unknown)}")
        for key in ("name", "seed", "threads", "machine", "pages"):
            _require(key in d, f"spec: missing required key {key!r}")
        phases_raw = d.get("phases", [{"ops": 16}])
        _require(isinstance(phases_raw, (list, tuple)) and phases_raw,
                 "spec: phases must be a non-empty list")
        name = d["name"] if isinstance(d["name"], str) else ""
        ctx = f"spec {name!r}" if name else "spec"
        phases = tuple(
            PhaseSpec.from_dict(ph, f"{ctx}: phases[{i}]")
            for i, ph in enumerate(phases_raw)
        )
        spec = cls(
            name=d["name"],
            seed=d["seed"],
            profile=d.get("profile", "custom"),
            threads=d["threads"],
            machine=d["machine"],
            pages=d["pages"],
            sharing=d.get("sharing", "uniform"),
            words_per_op=d.get("words_per_op", 8),
            false_sharing=d.get("false_sharing", 0),
            placement=d.get("placement"),
            zipf_s=d.get("zipf_s", 1.2),
            phases=phases,
        )
        return spec.validate()

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, two-space indent, trailing
        newline -- writing the same spec twice yields identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec: not JSON ({exc.msg} at line "
                            f"{exc.lineno})") from exc
        return cls.from_dict(d)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadSpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(
                f"cannot read {path}: {exc.strerror or exc}") from exc
        try:
            return cls.from_json(text)
        except SpecError as exc:
            raise SpecError(f"{path}: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"<WorkloadSpec {self.name!r} {self.sharing} "
            f"threads={self.threads} pages={self.pages} "
            f"phases={len(self.phases)}"
            + (f" fs={self.false_sharing}" if self.false_sharing else "")
            + ">"
        )
