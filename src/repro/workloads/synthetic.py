"""Synthetic sharing-pattern workloads.

Parameterized generators of the access patterns the paper's analysis
(section 4.1) reasons about: ``p`` processors taking turns operating on a
shared structure with reference density ``rho``, round-robin or random
interleaving, read-only sharing, producer/consumer phases, and pure
private work.  Used by the ablation benchmarks (policy sensitivity, the
migration-economics crossover) and by the integration and property tests
as adversarial inputs to the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..machine.memory import WORD_DTYPE
from ..runtime.data import WordArray
from ..runtime.ops import Compute, WaitNewer
from ..runtime.program import Program, ProgramAPI, ThreadEnv
from ..runtime.sync import Broadcast


class RoundRobinSharing(Program):
    """Section 4.1's scenario: ``p`` processors operate on a shared
    structure X in strict round-robin order.

    Each operation performs ``r = rho * s`` references (half reads, half
    writes) to X, which occupies ``s`` words of one coherent page.  With
    round-robin access ``g(p) = p/(p-1)``; whether migrating X pays
    depends on ``s`` and ``rho`` exactly as inequality (2) predicts.
    """

    name = "round-robin-sharing"

    def __init__(
        self,
        n_threads: int = 4,
        operations: int = 32,
        s_words: int = 512,
        rho: float = 1.0,
        compute_per_ref: float = 100.0,
        memory_sync: bool = True,
    ) -> None:
        """``memory_sync=False`` coordinates the round-robin turns with
        an engine-level channel instead of a coherent-memory event
        count, isolating X's own access economics from synchronization
        traffic (used by the section 4.1 three-options benchmark)."""
        if not 0 < rho:
            raise ValueError("rho must be positive")
        self.n_threads = n_threads
        self.operations = operations
        self.s_words = s_words
        self.rho = rho
        self.compute_per_ref = compute_per_ref
        self.memory_sync = memory_sync

    def setup(self, api: ProgramAPI) -> None:
        wpp = api.kernel.params.words_per_page
        arena = api.arena(
            (self.s_words + wpp - 1) // wpp + 1, label="X"
        )
        self.x = WordArray.alloc(arena, self.s_words, name="X")
        self.p = min(self.n_threads, api.n_processors)
        if self.memory_sync:
            sync_arena = api.arena(1, label="turn")
            self.turn = api.event_count(sync_arena, name="turn")
        else:
            self.turn = None
            self._turn_number = 0
            self._turn_wake = Broadcast(api.engine, "turn")
        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body, name=f"rr{tid}")

    def _await_turn(self, k):
        if self.turn is not None:
            yield from self.turn.await_at_least(k)
            return
        while self._turn_number < k:
            seen = self._turn_wake.version
            if self._turn_number >= k:
                return
            yield WaitNewer(self._turn_wake, seen)

    def _advance_turn(self):
        if self.turn is not None:
            yield from self.turn.advance()
            return
        self._turn_number += 1
        self._turn_wake.fire()
        return
        yield  # pragma: no cover - makes this a generator

    def _body(self, env: ThreadEnv):
        refs = max(1, int(round(self.rho * self.s_words)))
        reads = max(1, refs // 2)
        writes = max(1, refs - reads)
        my_ops = [
            k for k in range(self.operations) if k % self.p == env.tid
        ]
        for k in my_ops:
            yield from self._await_turn(k)
            data = yield self.x.read(0, min(reads, self.s_words))
            yield Compute(self.compute_per_ref * refs)
            yield self.x.write(
                0, (data[: min(writes, self.s_words)] + 1)
            )
            yield from self._advance_turn()
        return env.tid

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p))


class ReadOnlySharing(Program):
    """All threads repeatedly read a shared table: the ideal replication
    case -- one replication per node, everything local afterwards."""

    name = "read-only-sharing"

    def __init__(
        self, n_threads: int = 4, table_pages: int = 4, sweeps: int = 8
    ) -> None:
        self.n_threads = n_threads
        self.table_pages = table_pages
        self.sweeps = sweeps

    def setup(self, api: ProgramAPI) -> None:
        wpp = api.kernel.params.words_per_page
        n_words = self.table_pages * wpp
        rng = np.random.default_rng(7)
        backing = rng.integers(0, 1000, size=n_words, dtype=WORD_DTYPE)
        arena = api.arena(
            self.table_pages + 1, label="table", backing=backing
        )
        self.table = WordArray(arena.base_va, n_words, name="table")
        self.expected_sum = int(backing.sum())
        self.p = min(self.n_threads, api.n_processors)
        self.wpp = wpp
        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body, name=f"ro{tid}")

    def _body(self, env: ThreadEnv):
        total = 0
        for _sweep in range(self.sweeps):
            total = 0
            for start in range(0, self.table.n, self.wpp):
                chunk = yield self.table.read(
                    start, min(self.wpp, self.table.n - start)
                )
                total += int(chunk.sum())
        return total

    def verify(self, results) -> None:
        assert all(r == self.expected_sum for r in results), (
            results, self.expected_sum,
        )


class PhaseChangeSharing(Program):
    """A page that is write-hot early and read-only later: the case the
    defrost daemon exists for.  Phase 1 freezes the page (interleaved
    writes); phase 2 is pure reading -- only a thaw lets it replicate."""

    name = "phase-change-sharing"

    def __init__(
        self,
        n_threads: int = 4,
        hot_writes: int = 12,
        cold_reads: int = 200,
        read_words: int = 256,
    ) -> None:
        self.n_threads = n_threads
        self.hot_writes = hot_writes
        self.cold_reads = cold_reads
        self.read_words = read_words

    def setup(self, api: ProgramAPI) -> None:
        wpp = api.kernel.params.words_per_page
        arena = api.arena(2, label="phased")
        self.data = WordArray.alloc(
            arena, min(self.read_words, wpp), name="phased"
        )
        sync_arena = api.arena(1, label="gate")
        self.gate = api.event_count(sync_arena, name="gate")
        self.p = min(self.n_threads, api.n_processors)
        self.cpage = arena.cpage_of(self.data.base_va)
        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body, name=f"ph{tid}")

    def _body(self, env: ThreadEnv):
        # phase 1: interleaved writes in round-robin turn order
        my_turns = [
            k for k in range(self.hot_writes) if k % self.p == env.tid
        ]
        for k in my_turns:
            yield from self.gate.await_at_least(k)
            yield self.data.write(k % self.data.n, k)
            yield from self.gate.advance()
        yield from self.gate.await_at_least(self.hot_writes)
        # phase 2: everyone reads repeatedly
        total = 0
        for _ in range(self.cold_reads):
            chunk = yield self.data.read(0, self.data.n)
            total += int(chunk.sum())
        return env.tid

    def verify(self, results) -> None:
        assert sorted(results) == list(range(self.p))


class PrivateWork(Program):
    """Perfectly partitioned private data: the no-interference baseline
    (speedup should be essentially linear)."""

    name = "private-work"

    def __init__(
        self, n_threads: int = 4, pages_each: int = 2, sweeps: int = 10
    ) -> None:
        self.n_threads = n_threads
        self.pages_each = pages_each
        self.sweeps = sweeps

    def setup(self, api: ProgramAPI) -> None:
        self.p = min(self.n_threads, api.n_processors)
        wpp = api.kernel.params.words_per_page
        self.wpp = wpp
        self.regions = []
        for tid in range(self.p):
            arena = api.arena(self.pages_each, label=f"priv{tid}")
            self.regions.append(
                WordArray(
                    arena.base_va, self.pages_each * wpp, name=f"priv{tid}"
                )
            )
        for tid in range(self.p):
            api.spawn(tid % api.n_processors, self._body, name=f"pw{tid}")

    def _body(self, env: ThreadEnv):
        region = self.regions[env.tid]
        for sweep in range(self.sweeps):
            for start in range(0, region.n, self.wpp):
                n = min(self.wpp, region.n - start)
                data = yield region.read(start, n)
                yield Compute(100.0 * n)
                yield region.write(start, data + 1)
        total = yield region.read(0, region.n)
        return int(total.sum())

    def verify(self, results) -> None:
        expected = self.sweeps * self.regions[0].n
        for r in results:
            assert r == expected, (r, expected)
