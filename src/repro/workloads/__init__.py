"""The paper's application programs and microbenchmarks.

Gaussian elimination (Figure 1, section 5.1), parallel merge sort
(Figure 5, section 5.2), the recurrent-backpropagation neural-network
simulator (Figure 6, section 5.3), the section 4 basic-operation
microbenchmarks, and synthetic sharing patterns for ablations and tests.
"""

from .gauss import (
    GaussianElimination,
    eliminate_reference,
    make_input as make_gauss_input,
)
from .generate import (
    GeneratedWorkload,
    bench_spec_for,
    fingerprint_spec,
    generate_corpus,
    generate_spec,
    program_for_spec,
    run_spec,
    verify_corpus,
    write_corpus,
)
from .matmul import MatrixMultiply, matmul_reference
from .mergesort import MergeSort, make_input as make_sort_input
from .micro import (
    measure_page_copy,
    measure_read_miss_clean,
    measure_read_miss_modified,
    measure_remote_map_write,
    measure_shootdown_increment,
    measure_upgrade_write,
    measure_write_miss_present_plus,
)
from .neural import NeuralNetSimulator
from .sor import JacobiSOR, jacobi_reference, make_grid
from .spec import PhaseSpec, SpecError, WorkloadSpec
from .synthetic import (
    PhaseChangeSharing,
    PrivateWork,
    ReadOnlySharing,
    RoundRobinSharing,
)

__all__ = [
    "GaussianElimination",
    "GeneratedWorkload",
    "JacobiSOR",
    "MatrixMultiply",
    "MergeSort",
    "NeuralNetSimulator",
    "PhaseChangeSharing",
    "PhaseSpec",
    "PrivateWork",
    "ReadOnlySharing",
    "RoundRobinSharing",
    "SpecError",
    "WorkloadSpec",
    "bench_spec_for",
    "eliminate_reference",
    "fingerprint_spec",
    "generate_corpus",
    "generate_spec",
    "jacobi_reference",
    "matmul_reference",
    "make_grid",
    "make_gauss_input",
    "make_sort_input",
    "measure_page_copy",
    "measure_read_miss_clean",
    "measure_read_miss_modified",
    "measure_remote_map_write",
    "measure_shootdown_increment",
    "measure_upgrade_write",
    "measure_write_miss_present_plus",
    "program_for_spec",
    "run_spec",
    "verify_corpus",
    "write_corpus",
]
