#!/usr/bin/env python
"""Watching the protocol work: tracing one page's life.

Enables the kernel's protocol tracer, runs a small workload, and walks
through the life of a single coherent page: first touch, replication to
readers, collapse on a write, migration, freezing under interference,
and the defrost daemon's thaw.  This is the performance-analysis
instrumentation the paper's section 9 describes as future work.

Run:  python examples/protocol_trace.py
"""

import numpy as np

from repro import make_kernel
from repro.core import EventKind, competitive_kernel
from repro.runtime import (
    Compute,
    Program,
    Read,
    Write,
    run_program,
)


class PageLife(Program):
    """A deliberately eventful life for one page."""

    name = "page-life"

    def setup(self, api):
        arena = api.arena(2, label="star")
        self.va = arena.alloc(64, page_aligned=True)
        self.cpage = arena.cpage_of(self.va)
        sync = api.arena(1, label="sync")
        self.step = api.event_count(sync, name="step")
        api.spawn(0, self.author, name="author")
        api.spawn(1, self.reader_one, name="reader1")
        api.spawn(2, self.reader_two, name="reader2")
        api.spawn(3, self.rival, name="rival")

    def author(self, env):
        yield Write(self.va, np.arange(64, dtype=np.int64))  # first touch
        yield from self.step.advance()  # 1: data ready
        yield from self.step.await_at_least(3)  # readers replicated
        yield Write(self.va, 7)  # collapse the replicas
        yield from self.step.advance()  # 4
        return "author"

    def reader_one(self, env):
        yield from self.step.await_at_least(1)
        yield Read(self.va, 64)  # replicate to node 1
        yield from self.step.advance()  # 2
        return "r1"

    def reader_two(self, env):
        yield from self.step.await_at_least(2)
        yield Read(self.va, 64)  # replicate to node 2
        yield from self.step.advance()  # 3
        return "r2"

    def rival(self, env):
        yield from self.step.await_at_least(4)
        # interleaved writes with the author inside t1: freeze territory
        for i in range(3):
            yield Write(self.va + i, i)  # migrate, then freeze
            yield Compute(100_000)
        return "rival"


def main() -> None:
    kernel = make_kernel(n_processors=4, trace=True, defrost_period=50e6)
    prog = PageLife()
    result = run_program(kernel, prog)
    tracer = kernel.tracer

    print(f"ran {result.sim_time_ms:.1f} ms simulated; "
          f"{len(tracer)} protocol events recorded\n")
    print("event counts:", tracer.counts(), "\n")

    index = prog.cpage.index
    print(f"the life of cpage {index} ({prog.cpage.label!r}):")
    print(tracer.timeline(index, limit=40))
    print()
    print("state transitions:", " -> ".join(
        f"{a}->{b}" for a, b in tracer.transitions_of(index)
    ))

    print("\nfor contrast, the section 8 competitive comparator needs")
    print("reference counts for the same information at runtime:")
    kernel2, daemon = competitive_kernel(n_processors=4, period=20e6)
    run_program(kernel2, PageLife())
    print(f"  daemon sweeps: {daemon.runs}, pages re-placed: "
          f"{daemon.pages_replaced}, threshold "
          f"{daemon.threshold_words} remote words (the break-even)")


if __name__ == "__main__":
    main()
