#!/usr/bin/env python
"""Quickstart: run a parallel program on PLATINUM's coherent memory.

Builds a simulated 8-node Butterfly Plus, boots a PLATINUM kernel on it,
runs a small parallel Gaussian elimination (the paper's flagship
application), verifies the result against a sequential run, and prints
the kernel's post-mortem memory-management report -- the same
instrumentation the paper's authors used to diagnose their programs.

Run:  python examples/quickstart.py
"""

from repro import make_kernel, run_program
from repro.workloads import GaussianElimination


def main() -> None:
    # a PLATINUM kernel on a simulated 8-processor NUMA machine with the
    # paper's timing parameters (local ref 320 ns, remote read 5 us,
    # page copy 1.11 ms, freeze window t1 = 10 ms, defrost t2 = 1 s)
    kernel = make_kernel(n_processors=8)

    # the paper's integer Gaussian elimination: one thread per processor,
    # rows distributed cyclically, an event count per pivot row.
    # verify_result=True checks the final matrix against a sequential
    # elimination -- an end-to-end proof that replication and migration
    # kept every copy coherent.
    program = GaussianElimination(n=64, n_threads=8, verify_result=True)

    result = run_program(kernel, program)

    print(f"simulated execution time: {result.sim_time_ms:.1f} ms")
    print(f"coherent-memory faults:   {result.report.total_faults}")
    print(f"pages ever frozen:        "
          f"{[r.label for r in result.report.ever_frozen_pages]}")
    print()
    print(result.report.format(max_rows=12))
    print()
    print("note how the matrix pages replicated (repl column) while the")
    print("event-count page was frozen by the replication policy -- the")
    print("behaviour the paper reports in section 5.1.")


if __name__ == "__main__":
    main()
