#!/usr/bin/env python
"""Replaying the paper's section 4.2 tuning story.

The first version of the authors' Gaussian elimination program co-located
a startup spin lock with the matrix-size variable that every inner loop
reads.  Spinning on the lock froze the page; from then on all but one
thread paid a remote reference in its inner loop.  The kernel's per-Cpage
report (faults, handler contention, frozen flag) made the diagnosis easy,
and the defrost daemon later salvaged such layouts automatically.

This example runs the bad layout and the fixed layout side by side, shows
the diagnosis in the post-mortem report, and then shows the defrost
daemon's rescue.

Run:  python examples/gauss_tuning.py
"""

from repro import make_kernel, run_program
from repro.workloads import GaussianElimination


def run(colocate: bool, defrost: bool):
    kernel = make_kernel(
        n_processors=8,
        defrost_enabled=defrost,
        defrost_period=20e6,  # sped up for this short demonstration
    )
    result = run_program(
        kernel,
        GaussianElimination(
            n=96,
            n_threads=8,
            colocate_lock_with_size=colocate,
            verify_result=False,
        ),
    )
    return result


def describe(title: str, result) -> None:
    print(f"--- {title}")
    print(f"    time: {result.sim_time_ms:8.1f} ms   "
          f"remote words: {result.report.remote_words:6d}")
    size_page = next(
        r for r in result.report.rows if r.label == "misc[0]"
    )
    print(
        f"    size-variable page: {size_page.faults} faults, "
        f"{size_page.remote_mappings} remote mappings, "
        f"frozen={'yes' if size_page.was_frozen else 'no'}"
    )
    print()


def main() -> None:
    print("1) the fixed program: lock on its own page")
    good = run(colocate=False, defrost=False)
    describe("separated layout", good)

    print("2) the original bug: lock shares the size variable's page")
    bad = run(colocate=True, defrost=False)
    describe("co-located layout", bad)

    print("   the post-mortem report that diagnoses it:")
    print("\n".join(
        "   " + line for line in bad.report.format(max_rows=6).splitlines()
    ))
    extra = bad.report.remote_words - good.report.remote_words
    print(f"\n   -> {extra} extra remote reads: every thread's inner-loop")
    print("      termination test goes across the switch because the")
    print("      frozen page cannot be replicated.\n")

    print("3) thawing to the rescue: same bad layout, defrost daemon on")
    rescued = run(colocate=True, defrost=True)
    describe("co-located layout + defrost", rescued)
    remaining = rescued.report.remote_words - good.report.remote_words
    print(f"   -> only {max(0, remaining)} extra remote reads remain; the")
    print("      daemon thawed the accidentally frozen page and the next")
    print("      faults replicated it (paper: the bad layout then cost")
    print("      under two seconds more on the full 800x800 run).")


if __name__ == "__main__":
    main()
