#!/usr/bin/env python
"""Remote objects: moving the computation instead of the data.

Section 4.1 of the paper lists three ways to operate on shared data:
access it remotely, move the data (what PLATINUM automates), or move the
computation to the data with a remote procedure call — "implementations
of languages such as Emerald on top of PLATINUM would utilize the third
option."

This example builds a small bank of remote account objects, each living
on its own home node with a server thread, and runs transfer operations
against them from every processor.  The post-mortem shows the payoff of
function shipping for small, frequent operations: the account pages
never move, never replicate, and are only ever touched locally by their
servers.

Run:  python examples/remote_objects.py
"""

import numpy as np

from repro import make_kernel, run_program
from repro.runtime import (
    Compute,
    Program,
    Read,
    RemoteService,
    Write,
)

OP_DEPOSIT = 1
OP_BALANCE = 2


class Bank(Program):
    """Accounts as remote objects; tellers as RPC clients."""

    name = "bank"

    def __init__(self, n_accounts=2, n_tellers=3, deposits=8):
        self.n_accounts = n_accounts
        self.n_tellers = n_tellers
        self.deposits = deposits

    def setup(self, api):
        self.p = min(self.n_tellers, api.n_processors - self.n_accounts)
        self.accounts = [
            RemoteService(
                api,
                home_processor=i,
                state_words=4,
                handler=self.account_handler,
                n_clients=self.p,
                label=f"acct{i}",
            )
            for i in range(self.n_accounts)
        ]
        for tid in range(self.p):
            api.spawn(
                self.n_accounts + tid % (
                    api.n_processors - self.n_accounts
                ),
                self.teller,
                name=f"teller{tid}",
            )

    def account_handler(self, svc, opcode, args):
        balance = yield Read(svc.state_va, 1)
        if opcode == OP_DEPOSIT:
            new = int(balance[0]) + int(args[0])
            yield Compute(2_000)  # the "operation f" of section 4.1
            yield Write(svc.state_va, new)
            return np.array([new], dtype=np.int64)
        return np.array([int(balance[0])], dtype=np.int64)

    def teller(self, env):
        me = env.tid - self.n_accounts
        for i in range(self.deposits):
            account = self.accounts[i % self.n_accounts]
            yield from account.call(me, OP_DEPOSIT, 10)
        totals = []
        for account in self.accounts:
            reply = yield from account.call(me, OP_BALANCE)
            totals.append(int(reply[0]))
        for account in self.accounts:
            yield from account.stop(me)
        return totals

    def verify(self, results):
        # server threads return their call counts; tellers return totals
        teller_results = results[self.n_accounts:]
        grand_total = sum(max(t[i] for t in teller_results)
                          for i in range(self.n_accounts))
        assert grand_total == self.p * self.deposits * 10


def main() -> None:
    kernel = make_kernel(n_processors=6)
    prog = Bank(n_accounts=2, n_tellers=3, deposits=8)
    result = run_program(kernel, prog)

    print(f"bank ran in {result.sim_time_ms:.2f} ms simulated")
    for i, account in enumerate(prog.accounts):
        cpage = account.arena.cpage_of(account.state_va)
        print(
            f"  account {i}: home module {list(cpage.frames)}, "
            f"{account.calls_served} operations served, "
            f"{cpage.stats.replications} replications, "
            f"{cpage.stats.migrations} migrations, "
            f"{cpage.stats.remote_mappings} remote mappings"
        )
    print()
    print("the account pages never moved and were never accessed")
    print("remotely: the operations travelled instead (section 4.1's")
    print("third option, which Emerald-style languages would use).")


if __name__ == "__main__":
    main()
