#!/usr/bin/env python
"""Exploring the replication-policy design space (paper section 4).

Runs three workloads with very different sharing patterns under four
policies -- PLATINUM's freeze/thaw policy, always-replicate (classic
software DSM), never-cache (static placement / Uniform System), and the
ACE-style policy of Bolosky et al. -- and prints the time matrix.  Then
prints Table 1, the analytic answer to "when does moving a page pay?".

The point the paper makes: always-replicate wins on coarse-grain sharing
but collapses under fine-grain write-sharing; never-cache is the
opposite; PLATINUM's policy, by *selectively disabling caching* through
remote mappings, is competitive everywhere.

Run:  python examples/policy_playground.py
"""

from repro import make_kernel, run_program
from repro.analysis import MigrationCostModel, format_table
from repro.core.policy import (
    AceStylePolicy,
    AlwaysReplicatePolicy,
    NeverCachePolicy,
    TimestampFreezePolicy,
)
from repro.workloads import (
    GaussianElimination,
    NeuralNetSimulator,
    ReadOnlySharing,
)

WORKLOADS = {
    "gauss (coarse-grain)": lambda: GaussianElimination(
        n=96, n_threads=8, verify_result=False
    ),
    "neural (fine-grain)": lambda: NeuralNetSimulator(
        epochs=10, n_threads=8
    ),
    "read-only table": lambda: ReadOnlySharing(
        n_threads=8, table_pages=4, sweeps=8
    ),
}

POLICIES = {
    "freeze (PLATINUM)": TimestampFreezePolicy,
    "always-replicate": AlwaysReplicatePolicy,
    "never-cache": NeverCachePolicy,
    "ace-style": AceStylePolicy,
}


def main() -> None:
    rows = []
    for wname, wfactory in WORKLOADS.items():
        row = [wname]
        for pname, pfactory in POLICIES.items():
            kernel = make_kernel(
                n_processors=8, policy=pfactory(), defrost_period=50e6
            )
            result = run_program(kernel, wfactory())
            row.append(f"{result.sim_time_ms:9.1f}")
        rows.append(row)

    print(format_table(
        ["workload \\ policy (time ms)"] + list(POLICIES),
        rows,
        title="policy x workload time matrix (lower is better)",
    ))
    print()
    print("observations (cf. paper sections 4.2 and 5):")
    print("  - on coarse-grain gauss, caching policies beat never-cache;")
    print("  - on the fine-grain neural net, always-replicate thrashes")
    print("    (every interleaved write invalidates replicas) while the")
    print("    freeze policy gives up and remote-maps -- cheaply;")
    print("  - read-only data makes every caching policy look the same.")
    print()
    print(MigrationCostModel.paper_constants().format_table1())


if __name__ == "__main__":
    main()
