#!/usr/bin/env python
"""Ports: the message-passing side of PLATINUM (paper section 1.1).

Ports are globally named message queues with any number of senders and
receivers; they let threads communicate without sharing a memory object
and provide blocking synchronization.  This example builds a small
pipeline -- a generator stage, two worker stages, and a collector -- all
communicating purely through ports, then contrasts the shared-memory and
message-passing versions of the same reduction.

Run:  python examples/message_passing_ports.py
"""

import numpy as np

from repro import make_kernel, run_program
from repro.runtime import (
    Compute,
    Program,
    Read,
    RecvPort,
    SendPort,
    Write,
)


class PortPipeline(Program):
    """generator -> 2 squaring workers -> collector, all over ports."""

    name = "port-pipeline"

    def __init__(self, items: int = 20):
        self.items = items

    def setup(self, api):
        self.work = api.port(home_module=0, label="work")
        self.done = api.port(home_module=3, label="done")
        api.spawn(0, self.generator, name="gen")
        api.spawn(1, self.worker, name="worker1")
        api.spawn(2, self.worker, name="worker2")
        api.spawn(3, self.collector, name="collect")

    def generator(self, env):
        for i in range(self.items):
            yield SendPort(self.work, np.array([i], dtype=np.int64))
        # one poison pill per worker
        for _ in range(2):
            yield SendPort(self.work, np.array([-1], dtype=np.int64))
        return "generated"

    def worker(self, env):
        handled = 0
        while True:
            msg = yield RecvPort(self.work)
            value = int(msg[0])
            if value < 0:
                yield SendPort(self.done, np.array([-1], dtype=np.int64))
                return handled
            yield Compute(5_000)  # pretend the squaring is expensive
            yield SendPort(
                self.done, np.array([value * value], dtype=np.int64)
            )
            handled += 1

    def collector(self, env):
        total, pills = 0, 0
        while pills < 2:
            msg = yield RecvPort(self.done)
            value = int(msg[0])
            if value < 0:
                pills += 1
            else:
                total += value
        return total

    def verify(self, results):
        expected = sum(i * i for i in range(self.items))
        assert results[3] == expected, (results[3], expected)


class SharedMemoryReduction(Program):
    """The same reduction through coherent shared memory, for contrast."""

    name = "shared-reduction"

    def __init__(self, items: int = 20):
        self.items = items

    def setup(self, api):
        arena = api.arena(1, label="data")
        self.values_va = arena.alloc(self.items, page_aligned=True)
        sync = api.arena(1, label="sync")
        self.ready = api.event_count(sync, name="ready")
        api.spawn(0, self.producer, name="prod")
        api.spawn(3, self.consumer, name="cons")

    def producer(self, env):
        squares = np.arange(self.items, dtype=np.int64) ** 2
        yield Write(self.values_va, squares)
        yield from self.ready.advance()
        return "produced"

    def consumer(self, env):
        yield from self.ready.await_at_least(1)
        data = yield Read(self.values_va, self.items)
        return int(data.sum())

    def verify(self, results):
        assert results[1] == sum(i * i for i in range(self.items))


def main() -> None:
    kernel = make_kernel(n_processors=4)
    result = run_program(kernel, PortPipeline(items=20))
    w1, w2 = result.thread_results[1], result.thread_results[2]
    print(f"port pipeline: sum of squares = {result.thread_results[3]}")
    print(f"  work split between workers: {w1} + {w2} items")
    print(f"  simulated time: {result.sim_time_ms:.2f} ms")
    for port in kernel.ports.ports.values():
        print(f"  {port!r}: {port.sends} sends, {port.receives} receives")

    kernel2 = make_kernel(n_processors=4)
    result2 = run_program(kernel2, SharedMemoryReduction(items=20))
    print(f"\nshared-memory version: sum = {result2.thread_results[1]}, "
          f"time {result2.sim_time_ms:.2f} ms")
    print("(one page migration replaces twenty-two messages: exactly the")
    print(" trade the paper's coherent memory automates)")


if __name__ == "__main__":
    main()
